"""Command-line interface: run the paper's algorithms from a shell.

Examples
--------
Compute the diameter of a generated graph with every algorithm::

    python -m repro diameter --family clique_chain --nodes 24 --seed 1

Run only the quantum 3/2-approximation::

    python -m repro approx --family random_sparse --nodes 60 --quantum

Print Table 1 evaluated at a given size::

    python -m repro table1 --nodes 100000 --diameter 50

Run on the event-driven execution engine (idle nodes are skipped; same
results, asymptotically faster for wave-style algorithms)::

    python -m repro diameter --family clique_chain --nodes 24 --engine sparse

Sweep a grid of graph families and sizes over the standard algorithms,
fanned out over 4 worker processes (records are byte-identical to a
serial run)::

    python -m repro sweep --families cycle,clique_chain --sizes 24,48,96 \
        --algorithms classical_exact,two_approx --jobs 4

Persist the records (plus run provenance) to an append-only JSONL store,
resume it after an interruption, and export the result::

    python -m repro sweep --families cycle --sizes 48,96 --out run.jsonl
    python -m repro sweep --families cycle --sizes 48,96 --out run.jsonl --resume
    python -m repro export --store run.jsonl --format csv --out run.csv

Run every registered Theorem-7 quantum problem (exact diameter, the
3/2-approximation, exact radius, single-source eccentricity) on the
batched schedule backend, persisting records like a sweep (the stores of
``quantum`` and ``sweep`` are interoperable -- same task keys, same seed
streams)::

    python -m repro quantum --list
    python -m repro quantum --families clique_chain --sizes 24,48 \
        --backend batched --out quantum.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import json
import os
import signal
import sys
import threading
import time
from typing import List, Optional, Sequence

from repro.algorithms import (
    run_classical_exact_diameter,
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.analysis.sweep import sweep_table
from repro.analysis.tables import render_table, render_table1
from repro.congest import Network
from repro.core import quantum_exact_diameter, quantum_three_halves_diameter
from repro.core.problems import QUANTUM_PROBLEMS, quantum_problem_names
from repro.dispatch import (
    DISPATCH_NAMES,
    SHARD_POLICIES,
    DispatchCoordinator,
    DispatchError,
    RemoteDispatch,
    parse_address,
)
from repro.dispatch.worker import run_worker
from repro.engine import ENGINE_NAMES
from repro.graphs import generators
from repro.quantum.backend import BACKEND_NAMES
from repro.runner import SWEEP_ALGORITHMS, task_seed
from repro.service import (
    ExperimentService,
    GridRequest,
    QuotaPolicy,
    ServiceClient,
    ServiceClientError,
    execute_grid_request,
    fault_model_from_flags,
    serve_api,
)
from repro.store import (
    EXPORT_FORMATS,
    ExperimentStore,
    ExperimentStoreError,
    append_jsonl_line,
    export_records,
    git_describe,
    merge_shards,
    render_records,
    shard_stats,
)
from repro.tier import TIER_NAMES, set_default_tier


def _build_graph(args: argparse.Namespace):
    if args.diameter is not None and args.family == "controlled":
        return generators.diameter_controlled_graph(
            args.nodes, args.diameter, seed=args.seed
        )
    return generators.family_for_sweep(args.family, args.nodes, seed=args.seed)


@contextlib.contextmanager
def _compute_tier(name: Optional[str]):
    """Temporarily select the process-wide compute tier.

    Mirrors :func:`_schedule_backend`: process-wide so the batch runner
    ships the selection to its pool workers, restored afterwards so
    in-process callers of :func:`main` do not inherit a leaked default.
    Results are tier-independent (byte-identical), so the flag only
    affects wall-clock.
    """
    if name is None:
        yield
        return
    previous = set_default_tier(name)
    try:
        yield
    finally:
        set_default_tier(previous)


def _quantum_seeds(seed: int):
    """Independent network / schedule seed streams for a quantum run.

    One user-facing ``--seed`` must not feed the graph construction, the
    CONGEST node randomness *and* the quantum measurement randomness with
    the same raw value (the streams would replay each other); mirror the
    sweep command's graph-vs-algorithm split.
    """
    return (
        task_seed(seed, "quantum-network-stream"),
        task_seed(seed, "quantum-schedule-stream"),
    )


def _cmd_diameter(args: argparse.Namespace) -> int:
    with _compute_tier(args.tier):
        graph = _build_graph(args)
        truth = graph.compile().diameter()
        rows = []

        classical = run_classical_exact_diameter(
            Network(graph, seed=args.seed, engine=args.engine)
        )
        rows.append(
            ["classical exact [PRT12/HW12]", classical.diameter, classical.rounds]
        )

        network_seed, schedule_seed = _quantum_seeds(args.seed)
        quantum = quantum_exact_diameter(
            Network(graph, seed=network_seed, engine=args.engine),
            oracle_mode=args.oracle_mode, seed=schedule_seed, backend=args.backend,
        )
        rows.append(["quantum exact (Theorem 1)", quantum.diameter, quantum.rounds])

    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, true diameter={truth}")
    print(render_table(rows, header=["algorithm", "answer", "rounds"]))
    return 0 if classical.diameter == truth == quantum.diameter else 1


def _cmd_approx(args: argparse.Namespace) -> int:
    with _compute_tier(args.tier):
        graph = _build_graph(args)
        truth = graph.compile().diameter()
        rows = []

        two = run_classical_two_approximation(
            Network(graph, seed=args.seed, engine=args.engine)
        )
        rows.append(["2-approximation", two.estimate, two.rounds])
        classical = run_hprw_three_halves_approximation(
            Network(graph, seed=args.seed, engine=args.engine), seed=args.seed
        )
        rows.append(
            ["classical 3/2-approx [HPRW14]", classical.estimate, classical.rounds]
        )
        if args.quantum:
            network_seed, schedule_seed = _quantum_seeds(args.seed)
            quantum = quantum_three_halves_diameter(
                Network(graph, seed=network_seed, engine=args.engine),
                oracle_mode=args.oracle_mode, seed=schedule_seed,
                backend=args.backend,
            )
            rows.append(
                ["quantum 3/2-approx (Theorem 4)", quantum.estimate, quantum.rounds]
            )

    print(f"graph: n={graph.num_nodes}, true diameter={truth}")
    print(render_table(rows, header=["algorithm", "estimate", "rounds"]))
    valid = all(row[1] <= truth for row in rows)
    return 0 if valid else 1


def _parse_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _grid_request_from_args(args: argparse.Namespace, kind: str) -> GridRequest:
    """Build the :class:`GridRequest` described by parsed grid flags.

    The one construction point shared by ``sweep``, ``quantum`` and
    ``jobs submit`` -- identical flags always yield identical requests,
    which is what makes a daemon-run job's canonical export
    byte-identical to a local run.  Raises ``ValueError`` with
    CLI-grade messages (reported as usage errors, exit 2).
    """
    if kind == "quantum":
        algorithms = (
            list(quantum_problem_names())
            if args.problems == "all"
            else _parse_csv(args.problems)
        )
    else:
        algorithms = _parse_csv(args.algorithms)
    return GridRequest(
        families=_parse_csv(args.families),
        sizes=[int(item) for item in _parse_csv(args.sizes)],
        algorithms=algorithms,
        kind=kind,
        diameter=args.diameter,
        seed=args.seed,
        jobs=args.jobs,
        engine=args.engine,
        backend=args.backend,
        tier=args.tier,
        dispatch=args.dispatch,
        fault=fault_model_from_flags(
            loss=args.loss,
            delay=args.delay,
            max_delay=args.max_delay,
            crash=args.crash,
            crash_window=args.crash_window,
            down_rounds=args.down_rounds,
            churn=args.churn,
            timeout=args.fault_timeout,
            seed=args.fault_seed,
        ),
    )


@contextlib.contextmanager
def _dispatch_backend(args: argparse.Namespace, request: GridRequest):
    """The configured dispatch backend of a grid command, if any.

    ``--dispatch remote`` needs a coordinator: ``--coordinator HOST:PORT``
    joins an existing one (e.g. a ``repro serve --dispatch remote``
    daemon's), otherwise an embedded coordinator is started for the
    duration of the run -- its address is printed so workers can ``repro
    worker join`` it -- and the run waits for ``--dispatch-workers``
    registrations before dispatching.  Local backends need no
    configuration and yield ``None`` (the request's name is enough).
    """
    if request.dispatch != "remote":
        yield None
        return
    if args.coordinator is not None:
        host, port = parse_address(args.coordinator)
        yield RemoteDispatch(
            address=(host, port),
            kind=request.kind,
            workers=args.dispatch_workers,
        )
        return
    coordinator = DispatchCoordinator(
        port=args.dispatch_port,
        shard_policy=getattr(args, "shard_policy", "adaptive"),
        straggler_deadline=getattr(args, "straggler_deadline", 10.0),
    ).start()
    host, port = coordinator.address
    try:
        print(
            f"dispatch coordinator on {host}:{port}; waiting for "
            f"{args.dispatch_workers} worker(s) "
            f"(repro worker join {host}:{port} --shard-dir DIR)",
            file=sys.stderr,
            flush=True,
        )
        coordinator.wait_for_workers(
            args.dispatch_workers, timeout=args.dispatch_wait
        )
        yield RemoteDispatch(
            coordinator=coordinator,
            kind=request.kind,
            workers=args.dispatch_workers,
        )
        stats_path = getattr(args, "dispatch_stats", None)
        if stats_path is not None:
            with open(stats_path, "w", encoding="utf-8") as handle:
                json.dump(coordinator.stats(), handle, indent=2, sort_keys=True)
                handle.write("\n")
    finally:
        coordinator.stop()


def _run_grid_command(args: argparse.Namespace, kind: str) -> int:
    """The shared execution path of the ``sweep`` and ``quantum`` commands.

    Both commands run a ``(families x sizes) x algorithms`` grid with
    identical validation, seed streams, store semantics and exit codes --
    sharing the body is what keeps their task keys interoperable (a store
    written by one can be resumed by the other).  Execution itself goes
    through :func:`repro.service.execute_grid_request`, the same path the
    experiment service's job workers use.
    """
    if args.resume and args.out is None:
        print("--resume requires --out (the store file to continue)", file=sys.stderr)
        return 2
    try:
        request = _grid_request_from_args(args, kind)
        request.validate()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    store = ExperimentStore(args.out) if args.out is not None else None
    try:
        with _dispatch_backend(args, request) as dispatch:
            records = execute_grid_request(
                request, store=store, resume=args.resume, dispatch=dispatch
            )
    except (ExperimentStoreError, DispatchError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(sweep_table(records))
    if store is not None:
        print(f"\n{len(records)} record(s) persisted to {args.out}", file=sys.stderr)
    unconverged = [r for r in records if not r.success]
    if unconverged:
        print(
            f"\n{len(unconverged)} run(s) did not converge under the fault "
            "model (success=False)",
            file=sys.stderr,
        )
    failed = [r for r in records if r.correct is False]
    if failed:
        print(f"\n{len(failed)} correctness check(s) FAILED", file=sys.stderr)
        # Under an active fault model a wrong value is an expected,
        # *reported* outcome (success/correct land in the records), not a
        # bug in the algorithms -- only fault-free sweeps gate on it.
        if request.fault is None:
            return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    return _run_grid_command(args, "sweep")


def _cmd_quantum(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            [name, info.theorem, info.guarantee, info.description]
            for name, info in sorted(QUANTUM_PROBLEMS.items())
        ]
        print(render_table(rows, header=["problem", "paper", "guarantee", "description"]))
        return 0
    return _run_grid_command(args, "quantum")


def _cmd_export(args: argparse.Namespace) -> int:
    store = ExperimentStore(args.store)
    if not store.exists():
        print(f"store {args.store!r} does not exist", file=sys.stderr)
        return 2
    records = store.load_records()
    if not records:
        print(f"store {args.store!r} holds no records", file=sys.stderr)
        return 2
    if args.out is None:
        if args.format == "table":
            print(sweep_table(records))
        else:
            sys.stdout.write(render_records(records, args.format))
        return 0
    if args.format == "table":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(sweep_table(records) + "\n")
    else:
        export_records(records, args.out, args.format)
    print(
        f"{len(records)} record(s) exported to {args.out} ({args.format})",
        file=sys.stderr,
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Merge distributed store shards into one canonical store."""
    try:
        records = merge_shards(
            args.shards,
            out_path=args.out,
            require_complete=not args.allow_partial,
        )
    except ExperimentStoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    destination = f" into {args.out}" if args.out is not None else ""
    print(
        f"{len(records)} record(s) merged from {len(args.shards)} "
        f"shard(s){destination}",
        file=sys.stderr,
    )
    if args.stats:
        stats = shard_stats(args.shards)
        rows = [
            [
                worker,
                entry["cells"],
                entry["fresh"],
                entry["replayed"],
                entry["leases"],
                f"{entry['wall_seconds']:.3f}",
                f"{entry['cells_per_second']:.2f}",
            ]
            for worker, entry in stats["workers"].items()
        ]
        print(render_table(rows, header=[
            "worker", "cells", "fresh", "replayed",
            "leases", "wall s", "cells/s",
        ]))
        print(
            f"{stats['unique_cells']} unique cell(s), "
            f"{stats['duplicate_cells']} duplicate(s) dropped "
            "(stolen/speculative/requeued re-executions)",
            file=sys.stderr,
        )
    if args.out is None and not args.stats:
        print(sweep_table(records))
    return 0


def _cmd_worker_join(args: argparse.Namespace) -> int:
    """Join a dispatch coordinator and execute sweep shards until it stops."""
    try:
        host, port = parse_address(args.address)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(
        f"worker joining dispatch coordinator {host}:{port} "
        f"(shards under {args.shard_dir})",
        file=sys.stderr,
        flush=True,
    )
    stop_event = threading.Event()
    if args.supervise:
        # A supervised worker only stops on operator signal; translate
        # SIGINT/SIGTERM into the worker's cooperative stop event so the
        # current shard finishes its in-flight cell appends cleanly.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, lambda *_: stop_event.set())
            except ValueError:
                pass  # non-main thread (in-process tests drive run_worker)
    try:
        stats = run_worker(
            host,
            port,
            shard_dir=args.shard_dir,
            worker_id=args.name,
            once=args.once,
            connect_wait=args.connect_wait,
            heartbeat_interval=args.heartbeat,
            supervise=args.supervise,
            stop_event=stop_event,
        )
    except (ValueError, DispatchError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(
        f"worker done: {stats['cells']} cell(s) over "
        f"{stats['shards']} shard(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the experiment service daemon until SIGTERM/SIGINT.

    Shutdown is graceful: running jobs checkpoint (their workers stop
    between task completions and the jobs requeue durably), so a
    restarted daemon resumes exactly where this one stopped.
    """
    try:
        service = ExperimentService(
            args.data_dir,
            ledger_path=args.ledger,
            workers=args.workers,
            quota=QuotaPolicy(tenant_jobs=args.tenant_quota),
            dispatch=args.dispatch,
            dispatch_port=args.dispatch_port,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    service.start()
    if service.coordinator is not None:
        dhost, dport = service.coordinator.address
        print(
            f"dispatch coordinator on {dhost}:{dport} "
            f"(repro worker join {dhost}:{dport} --shard-dir DIR)",
            file=sys.stderr,
            flush=True,
        )
    server = serve_api(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    print(
        f"data dir {service.data_dir} | ledger {service.ledger.path} | "
        f"{service.workers} worker(s) | quota {service.quota.tenant_jobs} "
        "active job(s)/tenant",
        file=sys.stderr,
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous_term = signal.signal(signal.SIGTERM, _on_signal)
    previous_int = signal.signal(signal.SIGINT, _on_signal)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        while not stop.is_set():
            stop.wait(timeout=0.2)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
    print("service stopped (running jobs checkpointed)", file=sys.stderr)
    return 0


#: ``jobs watch`` exit codes mirror the job outcome so scripts (and the
#: CI smoke job) can branch on how a job ended.
_WATCH_EXIT_CODES = {"done": 0, "failed": 1, "cancelled": 3}


def _watch_job(client: ServiceClient, job_id: str, poll: float = 0.5) -> int:
    """Poll a job to a terminal state, echoing progress changes to stderr."""
    last: dict = {}

    def on_progress(status):
        snapshot = (status["state"], status["progress"]["done"])
        if snapshot != last.get("snapshot"):
            last["snapshot"] = snapshot
            progress = status["progress"]
            print(
                f"{job_id}: {status['state']} "
                f"{progress['done']}/{progress['total']}",
                file=sys.stderr,
            )

    status = client.watch(job_id, poll=poll, on_progress=on_progress)
    detail = status.get("detail")
    print(
        f"{job_id}: {status['state']}" + (f" ({detail})" if detail else ""),
        file=sys.stderr,
    )
    return _WATCH_EXIT_CODES.get(status["state"], 1)


def _jobs_client_errors(handler):
    """Decorate a ``jobs`` handler with uniform API-error reporting.

    Usage errors the service rejected (bad request, unknown job,
    unreachable daemon) exit 2 like local usage errors; everything else
    (quota, server-side failures) exits 1.
    """

    def wrapped(args: argparse.Namespace) -> int:
        try:
            return handler(args)
        except ServiceClientError as error:
            print(str(error), file=sys.stderr)
            return 2 if error.status in (0, 400, 404) else 1

    return wrapped


@_jobs_client_errors
def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    try:
        request = _grid_request_from_args(args, "sweep")
        request.validate()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    status = client.submit(args.tenant, request)
    job_id = status["job_id"]
    # The bare id on stdout keeps submission scriptable:
    #   JOB=$(repro jobs submit ...); repro jobs watch "$JOB"
    print(job_id)
    print(
        f"submitted {job_id} (tenant {args.tenant}, "
        f"{status['progress']['total']} cell(s))",
        file=sys.stderr,
    )
    if args.watch:
        return _watch_job(client, job_id)
    return 0


@_jobs_client_errors
def _cmd_jobs_status(args: argparse.Namespace) -> int:
    status = ServiceClient(args.url).status(args.job_id)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


@_jobs_client_errors
def _cmd_jobs_list(args: argparse.Namespace) -> int:
    jobs = ServiceClient(args.url).list_jobs(tenant=args.tenant)
    rows = [
        [
            job["job_id"],
            job["tenant"],
            job["state"],
            f"{job['progress']['done']}/{job['progress']['total']}",
            job.get("detail") or "",
        ]
        for job in jobs
    ]
    print(render_table(rows, header=["job", "tenant", "state", "progress", "detail"]))
    return 0


@_jobs_client_errors
def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    status = ServiceClient(args.url).cancel(args.job_id)
    print(f"{args.job_id}: cancel requested (state {status['state']})",
          file=sys.stderr)
    return 0


@_jobs_client_errors
def _cmd_jobs_results(args: argparse.Namespace) -> int:
    text = ServiceClient(args.url).results(args.job_id, format=args.format)
    if args.out is None:
        sys.stdout.write(text)
        return 0
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"results of {args.job_id} written to {args.out} ({args.format})",
          file=sys.stderr)
    return 0


@_jobs_client_errors
def _cmd_jobs_watch(args: argparse.Namespace) -> int:
    return _watch_job(ServiceClient(args.url), args.job_id, poll=args.poll)


@_jobs_client_errors
def _cmd_jobs_capacity(args: argparse.Namespace) -> int:
    print(json.dumps(ServiceClient(args.url).capacity(), indent=2, sort_keys=True))
    return 0


#: The benchmark harnesses ``repro bench`` runs, in order:
#: ``(name, harness file, baseline key)``.  Every harness exposes
#: ``run_benchmark(smoke=...) -> dict`` with a ``headline_speedup`` entry.
BENCH_HARNESSES = (
    ("dispatch", "bench_dispatch.py"),
    ("engine", "bench_engine_overhead.py"),
    ("faults", "bench_faults.py"),
    ("graphcore", "bench_graphcore.py"),
    ("quantum", "bench_quantum.py"),
    ("runner", "bench_runner_scaling.py"),
    ("vector", "bench_vector.py"),
)

#: A harness has regressed when its headline speedup drops more than this
#: fraction below the committed baseline.
BENCH_REGRESSION_TOLERANCE = 0.25


def _load_harness(path: str):
    """Import a benchmark harness from its file path.

    ``benchmarks/`` is intentionally not a package (the harnesses run
    standalone and under pytest), so the modules are loaded by location.
    """
    name = "repro_bench_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load benchmark harness {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_bench(args: argparse.Namespace) -> int:
    bench_dir = args.dir
    if not os.path.isdir(bench_dir):
        print(
            f"benchmark directory {bench_dir!r} not found "
            "(run from the repository root or pass --dir)",
            file=sys.stderr,
        )
        return 2
    mode = "smoke" if args.smoke else "full"
    baselines = {}
    if os.path.exists(args.baselines):
        with open(args.baselines, "r", encoding="utf-8") as handle:
            baselines = json.load(handle)
    known = baselines.get(mode, {})

    rows = []
    measured = {}
    regressions = []
    for name, filename in BENCH_HARNESSES:
        path = os.path.join(bench_dir, filename)
        if not os.path.exists(path):
            print(f"skipping {name}: {path} not found", file=sys.stderr)
            continue
        harness = _load_harness(path)
        started = time.perf_counter()
        report = harness.run_benchmark(smoke=args.smoke)
        wall = time.perf_counter() - started
        speedup = report["headline_speedup"]
        measured[name] = speedup
        if args.history is not None:
            # An append-only measurement history (one JSONL row per
            # harness per run) -- enough to plot speedup drift over
            # commits without re-running old trees.
            append_jsonl_line(
                args.history,
                {
                    "kind": "bench",
                    "commit": git_describe(),
                    "harness": name,
                    "mode": mode,
                    "speedup": speedup,
                    "wall_seconds": round(wall, 6),
                    "at": time.time(),
                },
            )
        baseline = known.get(name)
        if baseline is None:
            status = "no baseline"
        else:
            floor = baseline * (1.0 - BENCH_REGRESSION_TOLERANCE)
            if speedup < floor:
                status = f"REGRESSED (floor {floor:.2f}x)"
                regressions.append(name)
            else:
                status = "ok"
        rows.append(
            [
                name,
                f"{speedup}x",
                f"{baseline}x" if baseline is not None else "-",
                status,
            ]
        )

    print(render_table(rows, header=["harness", "headline", "baseline", "status"]))
    if args.history is not None and measured:
        print(f"{len(measured)} history row(s) appended to {args.history}",
              file=sys.stderr)
    if args.update:
        baselines[mode] = measured
        with open(args.baselines, "w", encoding="utf-8") as handle:
            json.dump(baselines, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baselines ({mode}) written to {args.baselines}", file=sys.stderr)
        return 0
    if regressions:
        print(
            f"{len(regressions)} harness(es) regressed more than "
            f"{int(BENCH_REGRESSION_TOLERANCE * 100)}%: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    diameter = args.diameter if args.diameter is not None else max(1, args.nodes // 100)
    print(render_table1(n=args.nodes, diameter=diameter, memory_qubits=args.memory))
    return 0


def add_grid_options(sub: argparse.ArgumentParser, sizes_default: str) -> None:
    """The grid flags shared by ``sweep``, ``quantum`` and ``jobs submit``.

    One builder -- not three hand-maintained copies -- so the flag
    inventories of the three grid commands cannot drift apart (they feed
    the same :func:`_grid_request_from_args`, and a flag present on one
    but missing on another would silently change daemon-run semantics).
    A regression test asserts the inventories stay identical.
    """
    sub.add_argument(
        "--families", default="clique_chain",
        help="comma-separated graph families (default: clique_chain)",
    )
    sub.add_argument(
        "--sizes", default=sizes_default,
        help=f"comma-separated node counts (default: {sizes_default})",
    )
    sub.add_argument(
        "--diameter", type=int, default=None,
        help="target diameter (only for --families controlled)",
    )
    sub.add_argument("--seed", type=int, default=0, help="base random seed")
    sub.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "worker processes for the batch runner (1 = serial, 0 = one "
            "per CPU); parallel output is byte-identical to serial"
        ),
    )
    sub.add_argument(
        "--engine", default=None, choices=ENGINE_NAMES,
        help=(
            "execution engine for the CONGEST simulator (results are "
            "engine-independent; default: dense)"
        ),
    )
    sub.add_argument(
        "--backend", default=None, choices=BACKEND_NAMES,
        help=(
            "quantum schedule backend for quantum algorithms in the grid "
            "(results are backend-independent; default: sampling)"
        ),
    )
    sub.add_argument(
        "--tier", default=None, choices=TIER_NAMES,
        help=(
            "compute tier for the correctness-gate oracles (results are "
            "tier-independent; default: stdlib)"
        ),
    )
    sub.add_argument(
        "--dispatch", default=None, choices=DISPATCH_NAMES,
        help=(
            "where grid cells execute: 'inprocess' (serial), "
            "'multiprocessing' (the local --jobs pool) or 'remote' "
            "(shard over registered dispatch workers; results are "
            "dispatch-independent, byte-identical to serial)"
        ),
    )


def add_dispatch_options(sub: argparse.ArgumentParser) -> None:
    """Remote-dispatch *operational* flags of the local grid commands.

    Only meaningful with ``--dispatch remote``; kept out of
    :func:`add_grid_options` because they configure *this process's*
    coordinator rather than the grid itself (``jobs submit`` requests
    inherit the daemon's coordinator instead).
    """
    sub.add_argument(
        "--coordinator", default=None, metavar="HOST:PORT",
        help=(
            "join an existing dispatch coordinator instead of embedding "
            "one (e.g. a 'repro serve --dispatch remote' daemon's)"
        ),
    )
    sub.add_argument(
        "--dispatch-port", type=int, default=0, metavar="PORT",
        help=(
            "port of the embedded dispatch coordinator "
            "(default: 0, pick a free port; the address is printed)"
        ),
    )
    sub.add_argument(
        "--dispatch-workers", type=int, default=1, metavar="N",
        help=(
            "wait for this many registered workers before dispatching "
            "a remote grid (default: 1)"
        ),
    )
    sub.add_argument(
        "--dispatch-wait", type=float, default=60.0, metavar="SECONDS",
        help="how long to wait for workers to register (default: 60)",
    )
    sub.add_argument(
        "--shard-policy", choices=SHARD_POLICIES, default="adaptive",
        help=(
            "embedded-coordinator shard scheduling: 'adaptive' (default; "
            "cost-model lease sizing, capability-weighted partitioning, "
            "work stealing and speculative straggler re-execution -- "
            "output stays byte-identical to serial) or 'static' (the "
            "fixed one-shot partitioner)"
        ),
    )
    sub.add_argument(
        "--straggler-deadline", type=float, default=10.0, metavar="SECONDS",
        help=(
            "adaptive policy: how long an in-flight shard may run before "
            "idle workers speculatively re-execute its remainder "
            "(default: 10)"
        ),
    )
    sub.add_argument(
        "--dispatch-stats", default=None, metavar="PATH",
        help=(
            "write the embedded coordinator's scheduling statistics "
            "(steals, speculative leases, per-worker capabilities/cells) "
            "as JSON to PATH when the run finishes"
        ),
    )


def add_store_options(sub: argparse.ArgumentParser) -> None:
    """The ``--out``/``--resume`` store flags of the local grid commands."""
    sub.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "persist records (plus run provenance) to this append-only "
            "JSONL experiment store; records are flushed as they complete"
        ),
    )
    sub.add_argument(
        "--resume", action="store_true",
        help=(
            "continue an interrupted run: cells already present in the "
            "--out store are loaded instead of recomputed (the merged "
            "record set is identical to an uninterrupted run)"
        ),
    )


def add_fault_options(sub: argparse.ArgumentParser) -> None:
    """Deterministic fault-injection flags (see :mod:`repro.faults`).

    All probabilities default to 0; with every flag at its default the
    null model applies and execution is byte-identical to a fault-free
    run.
    """
    sub.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-message loss probability (default: 0)",
    )
    sub.add_argument(
        "--delay", type=float, default=0.0, metavar="P",
        help="per-message extra-latency probability (default: 0)",
    )
    sub.add_argument(
        "--max-delay", type=int, default=1, metavar="R",
        help="max extra rounds a delayed message waits (default: 1)",
    )
    sub.add_argument(
        "--crash", type=float, default=0.0, metavar="P",
        help="per-node crash probability (fail-pause; default: 0)",
    )
    sub.add_argument(
        "--crash-window", type=int, default=32, metavar="R",
        help="crashes happen within the first R rounds (default: 32)",
    )
    sub.add_argument(
        "--down-rounds", type=int, default=0, metavar="R",
        help=(
            "rounds a crashed node stays down before restarting "
            "with its state intact (0 = never restarts; default: 0)"
        ),
    )
    sub.add_argument(
        "--churn", type=float, default=0.0, metavar="P",
        help="per-edge per-round outage probability (default: 0)",
    )
    sub.add_argument(
        "--fault-timeout", type=int, default=None, metavar="ROUNDS",
        help=(
            "abort any single run after this many rounds (recorded "
            "as a failed cell instead of hanging until the generic "
            "round cap)"
        ),
    )
    sub.add_argument(
        "--fault-seed", type=int, default=0,
        help=(
            "seed of the fault randomness stream, independent of the "
            "graph and algorithm seeds (default: 0)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Sublinear-Time Quantum Computation of the "
            "Diameter in CONGEST Networks' (Le Gall & Magniez, PODC 2018)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--family",
            default="clique_chain",
            choices=sorted(set(generators.SWEEP_FAMILIES) | {"controlled"}),
            help="graph family to generate (default: clique_chain)",
        )
        sub.add_argument("--nodes", type=int, default=24, help="number of nodes")
        sub.add_argument(
            "--diameter", type=int, default=None,
            help="target diameter (only for --family controlled)",
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument(
            "--oracle-mode", default="reference", choices=("reference", "congest"),
            help="how quantum branch values are evaluated (default: reference)",
        )
        sub.add_argument(
            "--engine", default=None, choices=ENGINE_NAMES,
            help=(
                "execution engine for the CONGEST simulator: 'dense' runs "
                "every node every round, 'sparse' skips idle nodes "
                "(default: the process default, dense)"
            ),
        )
        sub.add_argument(
            "--backend", default=None, choices=BACKEND_NAMES,
            help=(
                "quantum schedule backend: 'sampling' re-derives the "
                "Grover statistics every round, 'batched' precomputes "
                "them; results are identical for a fixed seed "
                "(default: the process default, sampling)"
            ),
        )
        sub.add_argument(
            "--tier", default=None, choices=TIER_NAMES,
            help=(
                "compute tier for the graph oracles: 'stdlib' (reference) "
                "or 'numpy' (vectorized bitset kernels; byte-identical "
                "results, default: the process default, stdlib)"
            ),
        )

    diameter_parser = subparsers.add_parser(
        "diameter", help="exact diameter: classical baseline vs Theorem 1"
    )
    add_graph_options(diameter_parser)
    diameter_parser.set_defaults(handler=_cmd_diameter)

    approx_parser = subparsers.add_parser(
        "approx", help="diameter approximations (2-approx, 3/2-approx, Theorem 4)"
    )
    add_graph_options(approx_parser)
    approx_parser.add_argument(
        "--quantum", action="store_true", help="also run the quantum 3/2-approximation"
    )
    approx_parser.set_defaults(handler=_cmd_approx)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="batch-run algorithms over a (family x size) grid, "
        "optionally over a process pool (--jobs)",
    )
    add_grid_options(sweep_parser, sizes_default="24,48")
    sweep_parser.add_argument(
        "--algorithms", default="classical_exact,two_approx",
        help=(
            "comma-separated algorithm names; available: "
            + ", ".join(sorted(SWEEP_ALGORITHMS))
        ),
    )
    add_store_options(sweep_parser)
    add_fault_options(sweep_parser)
    add_dispatch_options(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    quantum_parser = subparsers.add_parser(
        "quantum",
        help="run registered Theorem-7 quantum problems over a "
        "(family x size) grid with full sweep/store semantics",
        description=(
            "Run registered distributed quantum optimization problems "
            "(see --list) over a graph grid.  Records, provenance, "
            "checkpoint/resume and export behave exactly like 'sweep' -- "
            "the two commands share task keys and seed streams, so their "
            "stores are interoperable."
        ),
    )
    add_grid_options(quantum_parser, sizes_default="24")
    quantum_parser.add_argument(
        "--problems", default="all",
        help=(
            "comma-separated problem names, or 'all'; available: "
            + ", ".join(sorted(QUANTUM_PROBLEMS))
        ),
    )
    quantum_parser.add_argument(
        "--list", action="store_true",
        help="list the registered quantum problems and exit",
    )
    add_store_options(quantum_parser)
    add_fault_options(quantum_parser)
    add_dispatch_options(quantum_parser)
    quantum_parser.set_defaults(handler=_cmd_quantum)

    export_parser = subparsers.add_parser(
        "export",
        help="export a persisted experiment store (see sweep --out) "
        "to csv/json/jsonl or an aligned table",
    )
    export_parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="the JSONL experiment store written by sweep --out",
    )
    export_parser.add_argument(
        "--format", default="table", choices=("table",) + EXPORT_FORMATS,
        help="output format (default: table)",
    )
    export_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="destination file (default: stdout)",
    )
    export_parser.set_defaults(handler=_cmd_export)

    merge_parser = subparsers.add_parser(
        "merge",
        help="merge distributed store shards (see 'worker join') into "
        "one canonical store, byte-identical to a serial run",
        description=(
            "Merge the per-worker JSONL store shards of a distributed "
            "sweep into one canonical store.  Shard headers must agree "
            "on the grid signature and seed stream; task keys are "
            "deduplicated (first-complete wins) and records are ordered "
            "by grid index, so the merged store's canonical export is "
            "byte-identical to a serial single-process run."
        ),
    )
    merge_parser.add_argument(
        "shards", nargs="+", metavar="SHARD",
        help="worker shard store files (DIR/shard-<signature>-<worker>.jsonl)",
    )
    merge_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the merged canonical store here (default: print a table)",
    )
    merge_parser.add_argument(
        "--allow-partial", action="store_true",
        help=(
            "merge even when the shards do not cover the full grid "
            "(default: missing cells are a hard error)"
        ),
    )
    merge_parser.add_argument(
        "--stats", action="store_true",
        help=(
            "print a per-worker execution table (cells, fresh/replayed, "
            "leases, wall seconds, cells/sec) aggregated from the shard "
            "lease footers, plus the duplicate-cell dedup count"
        ),
    )
    merge_parser.set_defaults(handler=_cmd_merge)

    worker_parser = subparsers.add_parser(
        "worker",
        help="distributed dispatch worker (join a coordinator and "
        "execute sweep shards)",
    )
    worker_subparsers = worker_parser.add_subparsers(
        dest="worker_command", required=True
    )
    join_parser = worker_subparsers.add_parser(
        "join",
        help="register with a dispatch coordinator and execute shards "
        "until it shuts down",
        description=(
            "Join a dispatch coordinator (an embedded 'repro sweep "
            "--dispatch remote' one, or a 'repro serve --dispatch "
            "remote' daemon's).  Leased shards run the exact per-cell "
            "code of a local sweep; every completed cell is appended to "
            "this worker's own JSONL store shard under the advisory "
            "writer lock and streamed back to the coordinator."
        ),
    )
    join_parser.add_argument("address", metavar="HOST:PORT",
                             help="coordinator address")
    join_parser.add_argument(
        "--shard-dir", default="shards", metavar="DIR",
        help="directory for this worker's store shards (default: shards)",
    )
    join_parser.add_argument(
        "--name", default=None, metavar="ID",
        help="worker id, used in shard filenames (default: host-pid)",
    )
    join_parser.add_argument(
        "--once", action="store_true",
        help="exit when the coordinator connection ends (no reconnect)",
    )
    join_parser.add_argument(
        "--supervise", action="store_true",
        help=(
            "never give up: reconnect with capped exponential backoff "
            "across coordinator restarts and shutdowns, replaying this "
            "worker's shard store on rejoin (stop with Ctrl-C/SIGTERM; "
            "mutually exclusive with --once)"
        ),
    )
    join_parser.add_argument(
        "--connect-wait", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying the connect this long (default: 30)",
    )
    join_parser.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        help="interval between heartbeat frames (default: 2)",
    )
    join_parser.set_defaults(handler=_cmd_worker_join)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the benchmark harnesses and diff their headline "
        "speedups against committed baselines",
        description=(
            "Run every benchmark harness (see benchmarks/) and compare "
            "each headline speedup against the committed baselines file.  "
            "A harness that drops more than 25%% below its baseline fails "
            "the command (exit 1).  Use --update after an intentional "
            "perf change to rewrite the baselines."
        ),
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="small workload sizes (the CI configuration)",
    )
    bench_parser.add_argument(
        "--dir", default="benchmarks", metavar="PATH",
        help="directory holding the harness files (default: benchmarks)",
    )
    bench_parser.add_argument(
        "--baselines", default="BENCH_baselines.json", metavar="PATH",
        help="baseline speedups file (default: BENCH_baselines.json)",
    )
    bench_parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baselines from this run instead of comparing",
    )
    bench_parser.add_argument(
        "--history", default=None, metavar="PATH",
        help=(
            "append one JSONL row per harness (commit, harness, speedup, "
            "wall time, mode) to this measurement-history file"
        ),
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the multi-tenant experiment service daemon "
        "(HTTP JSON API over a durable job queue)",
        description=(
            "Run the experiment service: a job daemon whose workers "
            "execute submitted sweep grids through the same store/runner "
            "stack as 'repro sweep' (exports are byte-identical to local "
            "runs).  The queue is durably persisted to a JSONL ledger; a "
            "killed daemon resumes it on restart.  Stop with SIGTERM or "
            "Ctrl-C; running jobs checkpoint and requeue."
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8155,
        help="bind port, 0 picks a free one (default: 8155)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job workers, each a subprocess (default: 2)",
    )
    serve_parser.add_argument(
        "--data-dir", default="service-data", metavar="PATH",
        help=(
            "root of the per-tenant experiment store shards and the job "
            "ledger (default: service-data)"
        ),
    )
    serve_parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="job ledger file (default: <data-dir>/jobs.jsonl)",
    )
    serve_parser.add_argument(
        "--tenant-quota", type=int, default=8, metavar="N",
        help="max active (queued+running) jobs per tenant (default: 8)",
    )
    serve_parser.add_argument(
        "--dispatch", default=None, choices=("remote",),
        help=(
            "run a persistent dispatch coordinator so jobs submitted "
            "with --dispatch remote fan out to registered 'repro worker "
            "join' workers (the address is printed at startup)"
        ),
    )
    serve_parser.add_argument(
        "--dispatch-port", type=int, default=0, metavar="PORT",
        help=(
            "port of the daemon's dispatch coordinator "
            "(default: 0, pick a free port)"
        ),
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    jobs_parser = subparsers.add_parser(
        "jobs",
        help="client for a running experiment service "
        "(submit/status/cancel/results/watch/list/capacity)",
    )
    jobs_subparsers = jobs_parser.add_subparsers(
        dest="jobs_command", required=True
    )

    def add_url_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url", default="http://127.0.0.1:8155",
            help="service base URL (default: http://127.0.0.1:8155)",
        )

    submit_parser = jobs_subparsers.add_parser(
        "submit",
        help="submit a sweep grid to the service (same grid/fault flags "
        "as 'repro sweep'; prints the job id on stdout)",
    )
    add_grid_options(submit_parser, sizes_default="24,48")
    submit_parser.add_argument(
        "--algorithms", default="classical_exact,two_approx",
        help=(
            "comma-separated algorithm names; available: "
            + ", ".join(sorted(SWEEP_ALGORITHMS))
        ),
    )
    add_fault_options(submit_parser)
    add_url_option(submit_parser)
    submit_parser.add_argument(
        "--tenant", default="default",
        help="tenant the job is accounted to (default: default)",
    )
    submit_parser.add_argument(
        "--watch", action="store_true",
        help="poll the job to completion after submitting",
    )
    submit_parser.set_defaults(handler=_cmd_jobs_submit)

    status_parser = jobs_subparsers.add_parser(
        "status", help="print one job's status as JSON"
    )
    status_parser.add_argument("job_id", help="job id (from submit)")
    add_url_option(status_parser)
    status_parser.set_defaults(handler=_cmd_jobs_status)

    list_parser = jobs_subparsers.add_parser(
        "list", help="list the service's jobs as a table"
    )
    list_parser.add_argument(
        "--tenant", default=None, help="only this tenant's jobs",
    )
    add_url_option(list_parser)
    list_parser.set_defaults(handler=_cmd_jobs_list)

    cancel_parser = jobs_subparsers.add_parser(
        "cancel",
        help="cancel a job (immediate when queued; running jobs stop "
        "between task completions, keeping durable partial progress)",
    )
    cancel_parser.add_argument("job_id", help="job id (from submit)")
    add_url_option(cancel_parser)
    cancel_parser.set_defaults(handler=_cmd_jobs_cancel)

    results_parser = jobs_subparsers.add_parser(
        "results",
        help="fetch a job's records (jsonl is the canonical export, "
        "byte-identical to a local 'repro sweep' of the same flags)",
    )
    results_parser.add_argument("job_id", help="job id (from submit)")
    results_parser.add_argument(
        "--format", default="jsonl", choices=EXPORT_FORMATS,
        help="output format (default: jsonl)",
    )
    results_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="destination file (default: stdout)",
    )
    add_url_option(results_parser)
    results_parser.set_defaults(handler=_cmd_jobs_results)

    watch_parser = jobs_subparsers.add_parser(
        "watch",
        help="poll a job until it finishes "
        "(exit 0 done, 1 failed, 3 cancelled)",
    )
    watch_parser.add_argument("job_id", help="job id (from submit)")
    watch_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="poll interval (default: 0.5)",
    )
    add_url_option(watch_parser)
    watch_parser.set_defaults(handler=_cmd_jobs_watch)

    capacity_parser = jobs_subparsers.add_parser(
        "capacity",
        help="print worker-slot and per-tenant quota capacity as JSON",
    )
    add_url_option(capacity_parser)
    capacity_parser.set_defaults(handler=_cmd_jobs_capacity)

    table_parser = subparsers.add_parser(
        "table1", help="print Table 1 evaluated at a given (n, D)"
    )
    table_parser.add_argument("--nodes", type=int, required=True)
    table_parser.add_argument("--diameter", type=int, default=None)
    table_parser.add_argument(
        "--memory", type=int, default=None,
        help="per-node memory (qubits) for the Theorem-3 row",
    )
    table_parser.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
