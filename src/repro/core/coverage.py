"""Window sets ``S(u)`` (Definition 2) and the coverage bound of Lemma 1.

The final algorithm of Section 3.2 does not optimize ``ecc`` directly but
the function ``f(u) = max_{v in S(u)} ecc(v)``, where ``S(u)`` is the set of
nodes whose DFS-traversal number falls within a window of length ``2 d``
starting at ``u``.  Lemma 1 shows that a uniformly random ``u0`` covers any
fixed node with probability at least ``d / (2 n)``; since some node has
eccentricity ``D``, the mass ``P_opt`` of maximisers of ``f`` is at least
``d / (2 n)``, which is what buys the ``sqrt(n / d)``-iteration (hence
``sqrt(n d)``-round) bound of Theorem 1.

This module computes the window sets exactly (via the same sequential Euler
tour the distributed traversal follows) and provides the empirical
counterparts of the Lemma-1 bound used by the tests and the ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.algorithms.bfs import BFSTreeResult
from repro.algorithms.dfs_traversal import sequential_euler_tour
from repro.graphs.graph import Graph, NodeId


def window_set(
    tree: BFSTreeResult,
    u0: NodeId,
    window: int,
    members: Optional[Set[NodeId]] = None,
) -> Set[NodeId]:
    """The set ``S(u0)`` of Definition 2: the window of the DFS traversal.

    ``window`` is the number of traversal steps (``2 d`` in the paper).
    """
    return set(sequential_euler_tour(tree, u0, window=window, members=members))


def coverage_probability(
    tree: BFSTreeResult,
    target: NodeId,
    window: int,
    members: Optional[Set[NodeId]] = None,
) -> float:
    """``Pr_{u0 uniform}[target in S(u0)]`` computed exactly.

    Lemma 1 guarantees this is at least ``d / (2 n)`` when
    ``window = 2 d``.
    """
    candidates = list(members) if members is not None else list(tree.parent)
    hits = sum(
        1
        for u0 in candidates
        if target in window_set(tree, u0, window, members=members)
    )
    return hits / len(candidates)


def popt_lower_bound(num_candidates: int, d: int) -> float:
    """The Lemma-1 lower bound ``d / (2 n)`` on ``P_opt`` (capped at 1)."""
    if num_candidates < 1:
        raise ValueError(f"need at least one candidate, got {num_candidates}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return min(1.0, d / (2.0 * num_candidates))


def empirical_optimum_mass(
    graph: Graph,
    tree: BFSTreeResult,
    window: int,
    members: Optional[Set[NodeId]] = None,
) -> float:
    """The true ``P_opt``: the fraction of ``u0`` whose window reaches a
    maximum-eccentricity node.

    The benchmark harness compares this against the Lemma-1 lower bound to
    show how much slack the bound leaves on concrete graph families.
    """
    eccentricities = graph.compile().all_eccentricities()
    if members is not None:
        relevant = {node: eccentricities[node] for node in members}
    else:
        relevant = eccentricities
    target_value = max(relevant.values())
    best_nodes = {node for node, value in relevant.items() if value == target_value}
    candidates = list(members) if members is not None else list(tree.parent)
    hits = sum(
        1
        for u0 in candidates
        if window_set(tree, u0, window, members=members) & best_nodes
    )
    return hits / len(candidates)
