"""Quantum exact radius: the Theorem-7 framework pointed at a minimum.

The radius ``r = min_u ecc(u)`` is the mirror image of the diameter, and
the distributed quantum optimization framework (Theorem 7) covers it with
no new machinery: maximising ``f(u0) = -ecc(u0)`` over the uniform Setup
superposition finds a center.  The instantiation follows the *simple*
exact-diameter variant of Section 3.1:

* **Initialization** -- elect a leader, build ``BFS(leader)``, learn
  ``d = ecc(leader)`` and broadcast it: ``O(D)`` rounds;
* **Setup** -- broadcast the internal register over ``BFS(leader)`` with
  CNOT copies (Proposition 2): ``O(D)`` rounds;
* **Evaluation** -- ``f(u0) = -ecc(u0)`` via a BFS from ``u0`` plus a
  convergecast of the (negated) eccentricity back to the leader:
  ``O(D)`` rounds per application.

With ``P_opt >= 1/n`` (at least one center exists) the optimization costs
``O~(sqrt(n))`` Evaluation applications, i.e. ``O~(sqrt(n) * D)`` rounds
total -- the same budget as the simple diameter variant.  (The windowed
``d/2n``-coverage trick of Section 3.2 does *not* transfer: windows
maximise ``max_{v in S(u0)} ecc(v)``, and a maximum over a window is
useless for a minimum.)

Like the diameter problems, two oracle modes exist: ``"congest"`` runs
every branch's BFS end-to-end on the simulator, ``"reference"`` serves
branch values from the sequential CSR eccentricity oracle
(:meth:`repro.graphs.indexed.IndexedGraph.all_eccentricities`) and
measures the per-call cost from one representative run.  Ground truth for
the correctness gate is :meth:`repro.graphs.indexed.IndexedGraph.radius`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max, run_tree_broadcast
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.leader_election import run_leader_election
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.core.exact_diameter import ORACLE_CONGEST, ORACLE_REFERENCE
from repro.graphs.graph import Graph, NodeId
from repro.qcongest.framework import (
    DistributedOptimizationResult,
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast
from repro.quantum.cost_model import QuantumResourceCount, leader_memory_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.batch import BatchRunner


@dataclass
class QuantumRadiusResult:
    """Outcome of the quantum exact-radius algorithm."""

    radius: int
    center: NodeId
    leader: NodeId
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    optimization: DistributedOptimizationResult

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds used."""
        return self.metrics.rounds

    @property
    def memory_bits_per_node(self) -> int:
        """Maximum per-node (qu)bit memory observed / modelled."""
        return self.metrics.max_node_memory_bits


class ExactRadiusProblem(DistributedSearchProblem):
    """The exact-radius instantiation of the Theorem-7 framework.

    Maximises ``f(u0) = -ecc(u0)``; the maximiser is a center and the
    maximum is ``-radius``.
    """

    def __init__(
        self,
        network: Network,
        oracle_mode: str = ORACLE_CONGEST,
        leader: Optional[NodeId] = None,
    ) -> None:
        if oracle_mode not in (ORACLE_CONGEST, ORACLE_REFERENCE):
            raise ValueError(f"unknown oracle mode {oracle_mode!r}")
        self.network = network
        self.oracle_mode = oracle_mode
        self._given_leader = leader
        self.leader: Optional[NodeId] = None
        self.tree: Optional[BFSTreeResult] = None
        self._reference_eccentricities: Optional[Dict[NodeId, int]] = None
        self._reference_cost: Optional[ExecutionMetrics] = None
        self._setup_cost: Optional[ExecutionMetrics] = None
        # Mirrors ExactDiameterProblem: only end-to-end simulation evaluates
        # branches independently; the reference oracle amortises one
        # representative run over all branches.
        self.supports_parallel_evaluation = oracle_mode == ORACLE_CONGEST

    # ------------------------------------------------------------------
    def initialization(self) -> ExecutionMetrics:
        """Leader election, ``BFS(leader)`` and a broadcast of its depth."""
        metrics = ExecutionMetrics()
        if self._given_leader is None:
            election = run_leader_election(self.network)
            self.leader = election.leader
            metrics = metrics.merged(election.metrics)
        else:
            self.leader = self._given_leader

        self.tree = run_bfs_tree(self.network, self.leader)
        metrics = metrics.merged(self.tree.metrics)

        announce = run_tree_broadcast(
            self.network, self.tree, ("d-is", self.tree.depth)
        )
        metrics = metrics.merged(announce.metrics)
        metrics.record_phase("initialization", metrics.rounds)
        return metrics

    # ------------------------------------------------------------------
    def search_space(self) -> List[NodeId]:
        return list(self.network.graph.nodes())

    def setup_amplitudes(self) -> Dict[NodeId, float]:
        nodes = self.search_space()
        weight = 1.0 / (len(nodes) ** 0.5)
        return {node: weight for node in nodes}

    def setup_cost(self) -> ExecutionMetrics:
        if self._setup_cost is None:
            metrics, _ = run_setup_broadcast(self.network, self.tree, self.tree.root)
            self._setup_cost = metrics
        return self._setup_cost

    # ------------------------------------------------------------------
    def evaluate(self, u0: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.tree is None:
            raise RuntimeError("initialization must run before evaluation")
        if self.oracle_mode == ORACLE_CONGEST:
            eccentricity = run_eccentricity(self.network, u0)
            metrics = eccentricity.metrics
            # Route -ecc(u0) back to the leader over BFS(leader): one
            # convergecast, as in the simple diameter variant.
            report = run_tree_aggregate_max(
                self.network, self.tree,
                {
                    node: (-eccentricity.eccentricity if node == u0 else -self.network.num_nodes)
                    for node in self.network.graph.nodes()
                },
            )
            metrics = metrics.merged(report.metrics)
            return float(-eccentricity.eccentricity), metrics
        value = float(-self._eccentricities()[u0])
        return value, self._representative_cost()

    # ------------------------------------------------------------------
    def optimum_mass_lower_bound(self) -> float:
        # At least one center exists, so the maximisers of -ecc carry at
        # least a 1/n fraction of the uniform Setup mass.
        return 1.0 / self.network.num_nodes

    def internal_register_bits(self) -> int:
        return leader_memory_bits(
            self.network.num_nodes, self.optimum_mass_lower_bound()
        )

    # ------------------------------------------------------------------
    def _eccentricities(self) -> Dict[NodeId, int]:
        if self._reference_eccentricities is None:
            self._reference_eccentricities = (
                self.network.graph.compile().all_eccentricities()
            )
        return self._reference_eccentricities

    def _representative_cost(self) -> ExecutionMetrics:
        """One real CONGEST run of the Evaluation procedure, reused as the
        per-call cost in reference-oracle mode (the BFS + convergecast
        schedule is input-independent up to depth)."""
        if self._reference_cost is None:
            sample = run_eccentricity(self.network, self.tree.root)
            report = run_tree_aggregate_max(
                self.network, self.tree, {
                    node: 0 for node in self.network.graph.nodes()
                },
            )
            self._reference_cost = sample.metrics.merged(report.metrics)
        return self._reference_cost


def quantum_exact_radius(
    network: Union[Network, Graph],
    oracle_mode: str = ORACLE_CONGEST,
    delta: float = 0.1,
    seed: int = 0,
    leader: Optional[NodeId] = None,
    budget_constant: float = 4.0,
    runner: Optional["BatchRunner"] = None,
    backend: Optional[str] = None,
) -> QuantumRadiusResult:
    """Compute the exact radius with the Theorem-7 framework.

    Parameters mirror :func:`repro.core.exact_diameter.quantum_exact_diameter`
    (minus the variant: radius has no windowed coverage trick, see the
    module docstring).  The result is correct with probability at least
    ``1 - delta`` up to schedule constants; the returned ``center`` is a
    node whose eccentricity equals the reported radius whenever the
    optimization succeeded.
    """
    if isinstance(network, Graph):
        network = Network(network)
    problem = ExactRadiusProblem(network, oracle_mode=oracle_mode, leader=leader)
    optimization = run_distributed_quantum_optimization(
        problem,
        delta=delta,
        rng=random.Random(seed),
        budget_constant=budget_constant,
        runner=runner,
        backend=backend,
    )
    return QuantumRadiusResult(
        radius=int(round(-optimization.best_value)),
        center=optimization.best_item,
        leader=problem.leader,
        counts=optimization.counts,
        metrics=optimization.metrics,
        optimization=optimization,
    )
