"""The quantum problem registry: named, picklable Theorem-7 workloads.

Every quantum algorithm in this repository is one instantiation of the
distributed quantum optimization framework (Theorem 7); this module makes
those instantiations **first-class citizens** -- named, discoverable and
picklable -- so the batch runner, ``run_sweep_grid``, the experiment
store and the CLI treat a quantum optimization run exactly like a
classical sweep algorithm (provenance headers, checkpoint/resume,
CSV/JSONL export).

Each :class:`QuantumProblemInfo` bundles:

* ``solve`` -- a module-level (hence picklable) entry point with the
  uniform signature ``solve(network, *, oracle_mode, seed, delta,
  budget_constant, backend, runner) -> QuantumProblemRun``;
* ``oracle`` -- the sequential ground truth, computed on the PR-4
  compiled CSR view (:meth:`repro.graphs.graph.Graph.compile`), used by
  the sweep layer's correctness gate;
* ``guarantee`` -- the contract the gate validates (``"exact"`` against
  the problem's own oracle, or the Theorem-4 ``"three_halves"`` band);
* paper coordinates (``theorem``) and a one-line ``description`` for
  ``repro quantum --list``.

Registered problems (the registry is open: :func:`register_quantum_problem`
accepts new entries, e.g. from tests):

===================  ==========  ==========================================
name                 theorem     optimizes
===================  ==========  ==========================================
``exact_diameter``   Theorem 1   ``max_u0 max_{v in S(u0)} ecc(v)``
``three_halves``     Theorem 4   ``max_{u0 in R} max_{v in S_R(u0)} ecc(v)``
``radius``           Theorem 7   ``max_u0 -ecc(u0)`` (a center)
``source_ecc``       Theorem 7   ``max_v dist(s, v)`` for fixed ``s``
===================  ==========  ==========================================

The sweep kernels in :mod:`repro.runner.algorithms` are thin shims over
this registry (``quantum_<name>`` entries in ``SWEEP_ALGORITHMS``), and
``repro quantum`` enumerates it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.congest.network import Network
from repro.graphs.graph import Graph
from repro.qcongest.framework import DistributedOptimizationResult
from repro.quantum.cost_model import QuantumResourceCount

#: Guarantee names understood by the sweep layer (mirrored from
#: :mod:`repro.runner.algorithms`; duplicated literals to avoid an import
#: cycle -- the runner registry imports this module).
GUARANTEE_EXACT = "exact"
GUARANTEE_THREE_HALVES = "three_halves"


@dataclass
class QuantumProblemRun:
    """Uniform summary of one registered-problem run.

    ``value`` is the problem's headline answer (diameter estimate,
    radius, eccentricity, ...) as a float; ``result`` keeps the
    problem-specific result object for callers that want the details.
    """

    problem: str
    value: float
    rounds: int
    counts: QuantumResourceCount
    optimization: DistributedOptimizationResult
    result: Any


@dataclass(frozen=True)
class QuantumProblemInfo:
    """One registry entry: a named, picklable Theorem-7 workload."""

    name: str
    theorem: str
    description: str
    #: ``solve(network, *, oracle_mode, seed, delta, budget_constant,
    #: backend, runner) -> QuantumProblemRun`` -- module-level, picklable.
    solve: Callable[..., QuantumProblemRun]
    #: Sequential ground truth on the compiled CSR view.
    oracle: Callable[[Graph], float]
    #: Sweep-layer correctness contract against ``oracle``'s value.
    guarantee: str = GUARANTEE_EXACT


# ----------------------------------------------------------------------
# Solve wrappers (module-level so grid tasks can pickle them by name).

def solve_exact_diameter(network: Network, **options: Any) -> QuantumProblemRun:
    """Theorem 1 (windowed variant) through the uniform interface."""
    from repro.core.exact_diameter import quantum_exact_diameter

    result = quantum_exact_diameter(network, **options)
    return QuantumProblemRun(
        problem="exact_diameter",
        value=float(result.diameter),
        rounds=result.rounds,
        counts=result.counts,
        optimization=result.optimization,
        result=result,
    )


def solve_three_halves(network: Network, **options: Any) -> QuantumProblemRun:
    """Theorem 4 through the uniform interface."""
    from repro.core.approx_diameter import quantum_three_halves_diameter

    result = quantum_three_halves_diameter(network, **options)
    return QuantumProblemRun(
        problem="three_halves",
        value=float(result.estimate),
        rounds=result.rounds,
        counts=result.counts,
        optimization=result.optimization,
        result=result,
    )


def solve_radius(network: Network, **options: Any) -> QuantumProblemRun:
    """Exact radius (Theorem-7 instantiation) through the uniform interface."""
    from repro.core.radius import quantum_exact_radius

    result = quantum_exact_radius(network, **options)
    return QuantumProblemRun(
        problem="radius",
        value=float(result.radius),
        rounds=result.rounds,
        counts=result.counts,
        optimization=result.optimization,
        result=result,
    )


def solve_source_eccentricity(network: Network, **options: Any) -> QuantumProblemRun:
    """Single-source eccentricity (Theorem-7) through the uniform interface."""
    from repro.core.source_ecc import quantum_source_eccentricity

    result = quantum_source_eccentricity(network, **options)
    return QuantumProblemRun(
        problem="source_ecc",
        value=float(result.eccentricity),
        rounds=result.rounds,
        counts=result.counts,
        optimization=result.optimization,
        result=result,
    )


# ----------------------------------------------------------------------
# Ground-truth oracles (PR-4 compiled CSR view; module-level, picklable).

def diameter_oracle(graph: Graph) -> float:
    """True diameter from the sequential CSR oracle."""
    return float(graph.compile().diameter())


def radius_oracle(graph: Graph) -> float:
    """True radius from the sequential CSR oracle."""
    return float(graph.compile().radius())


def source_eccentricity_oracle(graph: Graph) -> float:
    """True ``ecc`` of the default source (the graph's first node)."""
    return float(graph.compile().eccentricity(graph.nodes()[0]))


# ----------------------------------------------------------------------

QUANTUM_PROBLEMS: Dict[str, QuantumProblemInfo] = {}


def register_quantum_problem(info: QuantumProblemInfo) -> QuantumProblemInfo:
    """Add ``info`` to the registry (replacing a same-named entry)."""
    QUANTUM_PROBLEMS[info.name] = info
    return info


def resolve_quantum_problem(name: str) -> QuantumProblemInfo:
    """Map a problem name to its registry entry, raising on unknown names."""
    info = QUANTUM_PROBLEMS.get(name)
    if info is None:
        known = ", ".join(sorted(QUANTUM_PROBLEMS))
        raise ValueError(f"unknown quantum problem {name!r} (available: {known})")
    return info


def quantum_problem_names() -> Tuple[str, ...]:
    """Registered problem names in sorted order."""
    return tuple(sorted(QUANTUM_PROBLEMS))


register_quantum_problem(
    QuantumProblemInfo(
        name="exact_diameter",
        theorem="Theorem 1",
        description="exact diameter via windowed eccentricity maximisation",
        solve=solve_exact_diameter,
        oracle=diameter_oracle,
        guarantee=GUARANTEE_EXACT,
    )
)
register_quantum_problem(
    QuantumProblemInfo(
        name="three_halves",
        theorem="Theorem 4",
        description="3/2-approximate diameter (HPRW preparation + quantum ball phase)",
        solve=solve_three_halves,
        oracle=diameter_oracle,
        guarantee=GUARANTEE_THREE_HALVES,
    )
)
register_quantum_problem(
    QuantumProblemInfo(
        name="radius",
        theorem="Theorem 7",
        description="exact radius via eccentricity minimisation",
        solve=solve_radius,
        oracle=radius_oracle,
        guarantee=GUARANTEE_EXACT,
    )
)
register_quantum_problem(
    QuantumProblemInfo(
        name="source_ecc",
        theorem="Theorem 7",
        description="single-source eccentricity of the first node",
        solve=solve_source_eccentricity,
        oracle=source_eccentricity_oracle,
        guarantee=GUARANTEE_EXACT,
    )
)
