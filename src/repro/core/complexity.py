"""Round-complexity formulas for every entry of Table 1.

The benchmark harnesses fit measured round counts against these functional
forms (ignoring polylogarithmic factors and constants, exactly as the
paper's ``O~`` / ``Omega~`` notation does) and EXPERIMENTS.md records the
comparison.  Each function documents the theorem or citation it comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional


def _check(n: int, diameter: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if diameter < 0:
        raise ValueError(f"diameter must be >= 0, got {diameter}")


# ----------------------------------------------------------------------
# Upper bounds
# ----------------------------------------------------------------------
def classical_exact_upper(n: int, diameter: int = 0) -> float:
    """Classical exact computation: ``O(n)`` rounds [HW12, PRT12]."""
    _check(n, diameter)
    return float(n)


def quantum_exact_upper(n: int, diameter: int) -> float:
    """Quantum exact computation: ``O~(sqrt(n D))`` rounds (Theorem 1)."""
    _check(n, diameter)
    return math.sqrt(n * max(1, diameter))


def quantum_exact_upper_simple(n: int, diameter: int) -> float:
    """The simpler Section-3.1 algorithm: ``O~(sqrt(n) * D)`` rounds."""
    _check(n, diameter)
    return math.sqrt(n) * max(1, diameter)


def classical_approx_upper(n: int, diameter: int) -> float:
    """Classical 3/2-approximation: ``O~(sqrt(n) + D)`` rounds [LP13, HPRW14]."""
    _check(n, diameter)
    return math.sqrt(n) + diameter


def quantum_approx_upper(n: int, diameter: int) -> float:
    """Quantum 3/2-approximation: ``O~((n D)^(1/3) + D)`` rounds (Theorem 4)."""
    _check(n, diameter)
    return (n * max(1, diameter)) ** (1.0 / 3.0) + diameter


def trivial_two_approx_upper(n: int, diameter: int) -> float:
    """Trivial 2-approximation: ``O(D)`` rounds (eccentricity of one node)."""
    _check(n, diameter)
    return float(max(1, diameter))


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def classical_exact_lower(n: int, diameter: int = 0) -> float:
    """Classical exact computation: ``Omega~(n)`` rounds [FHW12]."""
    _check(n, diameter)
    return float(n)


def quantum_exact_lower_small_diameter(n: int, diameter: int = 0) -> float:
    """Quantum exact / (3/2 - eps)-approx: ``Omega~(sqrt(n) + D)`` (Theorem 2)."""
    _check(n, diameter)
    return math.sqrt(n) + diameter


def quantum_exact_lower_bounded_memory(n: int, diameter: int, memory_qubits: int) -> float:
    """Quantum exact with ``s`` qubits of memory per node:
    ``Omega~(sqrt(n D) / s + D)`` rounds (Theorem 3)."""
    _check(n, diameter)
    if memory_qubits < 1:
        raise ValueError(f"memory must be >= 1 qubit, got {memory_qubits}")
    return math.sqrt(n * max(1, diameter)) / memory_qubits + diameter


def classical_approx_lower(n: int, diameter: int = 0) -> float:
    """Classical (3/2 - eps)-approximation: ``Omega~(n)`` rounds
    [HW12, ACHK16, BK17]."""
    _check(n, diameter)
    return float(n)


def bgk_disjointness_lower(k: int, messages: int) -> float:
    """Theorem 5 ([BGK+15]): the ``r``-message quantum communication
    complexity of ``DISJ_k`` is ``Omega~(k / r + r)`` qubits."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if messages < 1:
        raise ValueError(f"messages must be >= 1, got {messages}")
    return k / messages + messages


def theorem10_round_lower(k: int, b: int) -> float:
    """Theorem 10: a ``(b, k, d1, d2)``-reduction implies an
    ``Omega~(sqrt(k) / b)`` quantum round lower bound.

    (Balancing ``r * b = k / r + r`` gives ``r = Theta(sqrt(k / b))`` up to
    log factors; with ``b = Theta(n)`` and ``k = Theta(n^2)`` as in
    Theorem 8 this is ``Omega~(sqrt(n))``.)
    """
    if k < 1 or b < 1:
        raise ValueError("k and b must be >= 1")
    return math.sqrt(k / b)


def theorem3_round_lower(n: int, d: int, b: int, memory_qubits: int) -> float:
    """The bound derived in the proof of Theorem 3:
    ``r = Omega~(sqrt(k d / (b + s)))`` with ``k = Theta(n)``."""
    if n < 1 or d < 1 or b < 1 or memory_qubits < 0:
        raise ValueError("parameters must be positive")
    return math.sqrt(n * d / (b + max(1, memory_qubits)))


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One row of Table 1: problem, classical and quantum complexities."""

    problem: str
    kind: str  # "upper" or "lower"
    classical_label: str
    classical_formula: Callable[[int, int], float]
    quantum_label: str
    quantum_formula: Callable[[int, int], float]
    source: str

    def evaluate(self, n: int, diameter: int) -> dict:
        """Numeric values of both formulas for the given ``(n, D)``."""
        return {
            "problem": self.problem,
            "kind": self.kind,
            "n": n,
            "D": diameter,
            "classical": self.classical_formula(n, diameter),
            "quantum": self.quantum_formula(n, diameter),
        }


def table1_rows(memory_qubits: Optional[int] = None) -> List[Table1Row]:
    """The four rows of Table 1 as structured data.

    ``memory_qubits`` instantiates the ``s`` of the Theorem-3 lower bound
    (defaults to ``ceil(log2 n)^2``-style polylog memory when evaluated).
    """
    def theorem3(n: int, diameter: int) -> float:
        s = memory_qubits
        if s is None:
            s = max(1, math.ceil(math.log2(n + 1)) ** 2)
        return quantum_exact_lower_bounded_memory(n, diameter, s)

    return [
        Table1Row(
            problem="Exact computation",
            kind="upper",
            classical_label="O(n) [HW12, PRT12]",
            classical_formula=classical_exact_upper,
            quantum_label="O(sqrt(n D)) (Theorem 1)",
            quantum_formula=quantum_exact_upper,
            source="Table 1, row 1",
        ),
        Table1Row(
            problem="Exact computation",
            kind="lower",
            classical_label="Omega~(n) [FHW12]",
            classical_formula=classical_exact_lower,
            quantum_label="Omega~(sqrt(n) + D) (Th. 2); Omega~(sqrt(n D)/s + D) (Th. 3)",
            quantum_formula=theorem3,
            source="Table 1, row 2",
        ),
        Table1Row(
            problem="3/2-approximation",
            kind="upper",
            classical_label="O~(sqrt(n) + D) [LP13, HPRW14]",
            classical_formula=classical_approx_upper,
            quantum_label="O~((n D)^(1/3) + D) (Theorem 4)",
            quantum_formula=quantum_approx_upper,
            source="Table 1, row 3",
        ),
        Table1Row(
            problem="(3/2 - eps)-approximation",
            kind="lower",
            classical_label="Omega~(n) [HW12, ACHK16, BK17]",
            classical_formula=classical_approx_lower,
            quantum_label="Omega~(sqrt(n) + D) (Theorem 2)",
            quantum_formula=quantum_exact_lower_small_diameter,
            source="Table 1, row 4",
        ),
    ]
