"""Quantum single-source eccentricity: the smallest Theorem-7 workload.

``ecc(s) = max_v dist(s, v)`` for a fixed source ``s`` is classically an
``O(D)`` BFS, which makes it the ideal *calibration* problem for the
distributed quantum optimization framework: the quantum schedule, Setup
broadcast and Evaluation convergecast machinery all run end-to-end while
the classical answer stays one oracle BFS away
(:meth:`repro.graphs.indexed.IndexedGraph.eccentricity`).  The
instantiation of Theorem 7:

* **Initialization** -- build ``BFS(s)``; every node learns
  ``dist(s, v)``: ``O(D)`` rounds;
* **Setup** -- broadcast the internal register over ``BFS(s)``
  (Proposition 2): ``O(D)`` rounds;
* **Evaluation** -- ``f(v) = dist(s, v)`` is already stored at ``v``
  after Initialization, so one convergecast reports it to the source:
  ``O(D)`` rounds per application;
* ``P_opt >= 1/n`` (some node realises the eccentricity), giving the
  generic ``O~(sqrt(n))``-application budget of Corollary 1.

This is deliberately *not* a speed-up over the classical BFS -- the paper
makes the same point for single eccentricities (the gain of Theorems 1
and 4 comes from batching many BFS-like subproblems into one quantum
optimization).  Having the workload registered keeps the framework honest
on a problem whose classical baseline is trivial, and exercises the
sweep/store/CLI plumbing on a second exact guarantee besides diameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.core.exact_diameter import ORACLE_CONGEST, ORACLE_REFERENCE
from repro.graphs.graph import Graph, NodeId
from repro.qcongest.framework import (
    DistributedOptimizationResult,
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast
from repro.quantum.cost_model import QuantumResourceCount, leader_memory_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.batch import BatchRunner


@dataclass
class QuantumSourceEccentricityResult:
    """Outcome of the quantum single-source eccentricity computation."""

    eccentricity: int
    source: NodeId
    farthest: NodeId
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    optimization: DistributedOptimizationResult

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds used."""
        return self.metrics.rounds


class SourceEccentricityProblem(DistributedSearchProblem):
    """Theorem-7 instantiation of ``f(v) = dist(source, v)``."""

    def __init__(
        self,
        network: Network,
        source: Optional[NodeId] = None,
        oracle_mode: str = ORACLE_CONGEST,
    ) -> None:
        if oracle_mode not in (ORACLE_CONGEST, ORACLE_REFERENCE):
            raise ValueError(f"unknown oracle mode {oracle_mode!r}")
        self.network = network
        self.oracle_mode = oracle_mode
        self.source: NodeId = (
            source if source is not None else network.graph.nodes()[0]
        )
        self.tree: Optional[BFSTreeResult] = None
        self._setup_cost: Optional[ExecutionMetrics] = None
        self._reference_cost: Optional[ExecutionMetrics] = None
        # Every congest-mode evaluation is an independent convergecast of
        # state fixed at initialization; reference mode shares the
        # representative-cost cache.
        self.supports_parallel_evaluation = oracle_mode == ORACLE_CONGEST

    # ------------------------------------------------------------------
    def initialization(self) -> ExecutionMetrics:
        """Build ``BFS(source)``; afterwards node ``v`` holds ``dist(s, v)``."""
        self.tree = run_bfs_tree(self.network, self.source)
        metrics = self.tree.metrics
        metrics.record_phase("initialization", metrics.rounds)
        return metrics

    # ------------------------------------------------------------------
    def search_space(self) -> List[NodeId]:
        return list(self.network.graph.nodes())

    def setup_amplitudes(self) -> Dict[NodeId, float]:
        nodes = self.search_space()
        weight = 1.0 / (len(nodes) ** 0.5)
        return {node: weight for node in nodes}

    def setup_cost(self) -> ExecutionMetrics:
        if self._setup_cost is None:
            metrics, _ = run_setup_broadcast(self.network, self.tree, self.source)
            self._setup_cost = metrics
        return self._setup_cost

    # ------------------------------------------------------------------
    def evaluate(self, v: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.tree is None:
            raise RuntimeError("initialization must run before evaluation")
        if self.oracle_mode == ORACLE_CONGEST:
            # Node v already knows dist(s, v); report it to the source by
            # convergecast over BFS(s) (every other node contributes the
            # neutral 0 <= any distance).
            report = run_tree_aggregate_max(
                self.network, self.tree,
                {
                    node: (self.tree.distance[v] if node == v else 0)
                    for node in self.network.graph.nodes()
                },
            )
            return float(report.value), report.metrics
        return float(self.tree.distance[v]), self._representative_cost()

    # ------------------------------------------------------------------
    def optimum_mass_lower_bound(self) -> float:
        # Some node realises ecc(s), so the maximisers carry >= 1/n of the
        # uniform Setup mass.
        return 1.0 / self.network.num_nodes

    def internal_register_bits(self) -> int:
        return leader_memory_bits(
            self.network.num_nodes, self.optimum_mass_lower_bound()
        )

    # ------------------------------------------------------------------
    def _representative_cost(self) -> ExecutionMetrics:
        """One real convergecast, reused as the per-call cost in
        reference-oracle mode (the schedule is input-independent)."""
        if self._reference_cost is None:
            sample = run_tree_aggregate_max(
                self.network, self.tree,
                {node: 0 for node in self.network.graph.nodes()},
            )
            self._reference_cost = sample.metrics
        return self._reference_cost


def quantum_source_eccentricity(
    network: Union[Network, Graph],
    source: Optional[NodeId] = None,
    oracle_mode: str = ORACLE_CONGEST,
    delta: float = 0.1,
    seed: int = 0,
    budget_constant: float = 4.0,
    runner: Optional["BatchRunner"] = None,
    backend: Optional[str] = None,
) -> QuantumSourceEccentricityResult:
    """Compute ``ecc(source)`` with the Theorem-7 framework.

    ``source`` defaults to the graph's first node (matching the sweep
    registry's ground-truth oracle).  Other parameters mirror
    :func:`repro.core.exact_diameter.quantum_exact_diameter`; the result
    is correct with probability at least ``1 - delta`` up to schedule
    constants.
    """
    if isinstance(network, Graph):
        network = Network(network)
    problem = SourceEccentricityProblem(
        network, source=source, oracle_mode=oracle_mode
    )
    optimization = run_distributed_quantum_optimization(
        problem,
        delta=delta,
        rng=random.Random(seed),
        budget_constant=budget_constant,
        runner=runner,
        backend=backend,
    )
    return QuantumSourceEccentricityResult(
        eccentricity=int(round(optimization.best_value)),
        source=problem.source,
        farthest=optimization.best_item,
        counts=optimization.counts,
        metrics=optimization.metrics,
        optimization=optimization,
    )
