"""The paper's algorithms: quantum exact and approximate diameter computation.

* :mod:`repro.core.exact_diameter` -- Theorem 1: an ``O~(sqrt(n D))``-round
  quantum distributed algorithm computing the exact diameter (plus the
  simpler ``O~(sqrt(n) * D)`` variant of Section 3.1);
* :mod:`repro.core.approx_diameter` -- Theorem 4: an
  ``O~((n D)^(1/3) + D)``-round quantum 3/2-approximation;
* :mod:`repro.core.coverage` -- the window sets ``S(u)`` of Definition 2 and
  the coverage bound of Lemma 1 that drives ``P_opt >= d / 2n``;
* :mod:`repro.core.radius` -- quantum exact radius (Theorem 7 pointed at
  a minimum) and :mod:`repro.core.source_ecc` -- quantum single-source
  eccentricity, the framework's calibration workload;
* :mod:`repro.core.problems` -- the quantum problem registry: named,
  picklable Theorem-7 workloads the sweep/store/CLI layers consume like
  classical algorithms;
* :mod:`repro.core.complexity` -- the round-complexity formulas of every
  entry of Table 1, used by the benchmark harnesses for the
  paper-versus-measured comparison.
"""

from repro.core.approx_diameter import (
    QuantumApproxDiameterResult,
    quantum_three_halves_diameter,
)
from repro.core.complexity import Table1Row, table1_rows
from repro.core.coverage import (
    coverage_probability,
    empirical_optimum_mass,
    popt_lower_bound,
    window_set,
)
from repro.core.exact_diameter import (
    QuantumDiameterResult,
    quantum_exact_diameter,
)
from repro.core.problems import (
    QUANTUM_PROBLEMS,
    QuantumProblemInfo,
    QuantumProblemRun,
    quantum_problem_names,
    register_quantum_problem,
    resolve_quantum_problem,
)
from repro.core.radius import QuantumRadiusResult, quantum_exact_radius
from repro.core.source_ecc import (
    QuantumSourceEccentricityResult,
    quantum_source_eccentricity,
)

__all__ = [
    "quantum_exact_diameter",
    "QuantumDiameterResult",
    "quantum_three_halves_diameter",
    "QuantumApproxDiameterResult",
    "quantum_exact_radius",
    "QuantumRadiusResult",
    "quantum_source_eccentricity",
    "QuantumSourceEccentricityResult",
    "QUANTUM_PROBLEMS",
    "QuantumProblemInfo",
    "QuantumProblemRun",
    "register_quantum_problem",
    "resolve_quantum_problem",
    "quantum_problem_names",
    "window_set",
    "coverage_probability",
    "popt_lower_bound",
    "empirical_optimum_mass",
    "table1_rows",
    "Table1Row",
]
