"""Theorem 4: quantum 3/2-approximation in ``O~((n D)^(1/3) + D)`` rounds.

The algorithm (Figure 3) runs the classical preparation of [HPRW14]
(Steps 1-3: sample ``S``, find the node ``w`` farthest from ``S``, select
the ball ``R`` of the ``s`` nodes closest to ``w``) and then replaces the
classical "BFS from every node of R" by a quantum optimization over ``R``:
the same Figure-2 Evaluation machinery, restricted to the subtree of
``BFS(w)`` induced by ``R``, gives ``P_opt >= d / (2 s)`` and therefore an
``O~(sqrt(s D) + D)``-round quantum phase.  Balancing the ``O~(n / s + D)``
preparation against the quantum phase with ``s = Theta(n^{2/3} D^{-1/3})``
yields the ``O~((n D)^{1/3} + D)`` bound of Theorem 4.

The estimate returned is ``max(ecc over S, ecc(w), quantum max ecc over R)``
and satisfies ``floor(2D/3) <= D_hat <= D`` with high probability (the
correctness analysis is inherited from [HPRW14]; only the last phase
changes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.algorithms.diameter_approx import (
    HPRWPreparationResult,
    run_hprw_preparation,
)
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.evaluation import run_evaluation_procedure
from repro.algorithms.leader_election import run_leader_election
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.core.coverage import popt_lower_bound, window_set
from repro.graphs.graph import Graph, NodeId
from repro.qcongest.framework import (
    DistributedOptimizationResult,
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast
from repro.quantum.cost_model import QuantumResourceCount, leader_memory_bits
from repro.runner.batch import task_seed

from repro.core.exact_diameter import ORACLE_CONGEST, ORACLE_REFERENCE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.batch import BatchRunner


@dataclass
class QuantumApproxDiameterResult:
    """Outcome of the quantum 3/2-approximation (Theorem 4)."""

    estimate: int
    ball_size: int
    s_parameter: int
    w: NodeId
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    preparation: HPRWPreparationResult
    optimization: DistributedOptimizationResult

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds used (preparation + quantum phase)."""
        return self.metrics.rounds


class BallEccentricityProblem(DistributedSearchProblem):
    """Quantum optimization of ``max_{v in S_R(u0)} ecc(v)`` over the ball ``R``."""

    def __init__(
        self,
        network: Network,
        preparation: HPRWPreparationResult,
        oracle_mode: str = ORACLE_CONGEST,
    ) -> None:
        if oracle_mode not in (ORACLE_CONGEST, ORACLE_REFERENCE):
            raise ValueError(f"unknown oracle mode {oracle_mode!r}")
        self.network = network
        self.preparation = preparation
        self.oracle_mode = oracle_mode
        self.window_parameter = max(1, preparation.d_w)
        self._setup_cost: Optional[ExecutionMetrics] = None
        self._reference_cost: Optional[ExecutionMetrics] = None
        self._reference_eccentricities: Optional[Dict[NodeId, int]] = None
        # See ExactDiameterProblem: only end-to-end simulation evaluates
        # branches independently; the reference oracle shares hidden state.
        self.supports_parallel_evaluation = oracle_mode == ORACLE_CONGEST

    # ------------------------------------------------------------------
    def initialization(self) -> ExecutionMetrics:
        # The preparation phase (already executed) is the initialization of
        # this problem; its cost is accounted by the caller, so the quantum
        # optimization itself starts from zero additional initialization.
        return ExecutionMetrics()

    def search_space(self) -> List[NodeId]:
        return sorted(self.preparation.ball, key=repr)

    def setup_amplitudes(self) -> Dict[NodeId, float]:
        ball = self.search_space()
        weight = 1.0 / math.sqrt(len(ball))
        return {node: weight for node in ball}

    def setup_cost(self) -> ExecutionMetrics:
        if self._setup_cost is None:
            metrics, _ = run_setup_broadcast(
                self.network, self.preparation.w_tree, self.preparation.w
            )
            self._setup_cost = metrics
        return self._setup_cost

    # ------------------------------------------------------------------
    def evaluate(self, item: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.oracle_mode == ORACLE_CONGEST:
            evaluation = run_evaluation_procedure(
                self.network,
                self.preparation.w_tree,
                self.window_parameter,
                item,
                members=self.preparation.ball,
            )
            return float(evaluation.value), evaluation.metrics
        eccentricities = self._eccentricities()
        window = window_set(
            self.preparation.w_tree,
            item,
            2 * self.window_parameter,
            members=self.preparation.ball,
        )
        value = float(max(eccentricities[node] for node in window))
        return value, self._representative_cost()

    def optimum_mass_lower_bound(self) -> float:
        return popt_lower_bound(len(self.preparation.ball), self.window_parameter)

    def internal_register_bits(self) -> int:
        return leader_memory_bits(
            self.network.num_nodes, self.optimum_mass_lower_bound()
        )

    # ------------------------------------------------------------------
    def _eccentricities(self) -> Dict[NodeId, int]:
        if self._reference_eccentricities is None:
            self._reference_eccentricities = self.network.graph.compile().all_eccentricities()
        return self._reference_eccentricities

    def _representative_cost(self) -> ExecutionMetrics:
        if self._reference_cost is None:
            sample = run_evaluation_procedure(
                self.network,
                self.preparation.w_tree,
                self.window_parameter,
                self.preparation.w,
                members=self.preparation.ball,
            )
            self._reference_cost = sample.metrics
        return self._reference_cost


def default_s_parameter(n: int, d: int) -> int:
    """The balancing choice ``s = Theta(n^{2/3} D^{-1/3})`` of Theorem 4.

    ``d`` is any 2-approximation of the diameter (the paper uses
    ``ecc(leader)``).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    d = max(1, d)
    return max(1, min(n, math.ceil(n ** (2.0 / 3.0) / d ** (1.0 / 3.0))))


def quantum_three_halves_diameter(
    network: Union[Network, Graph],
    s: Optional[int] = None,
    oracle_mode: str = ORACLE_CONGEST,
    delta: float = 0.1,
    seed: int = 0,
    budget_constant: float = 4.0,
    runner: Optional["BatchRunner"] = None,
    backend: Optional[str] = None,
) -> QuantumApproxDiameterResult:
    """Compute a 3/2-approximation of the diameter (Theorem 4 / Figure 3).

    When ``s`` is not given it is set to the balancing value
    ``Theta(n^{2/3} / d^{1/3})`` with ``d = ecc(leader)``.  ``runner``
    optionally dispatches the quantum phase's independent branch
    evaluations through a process pool in ``"congest"`` oracle mode; the
    result is identical to a serial run.  ``backend`` selects the quantum
    schedule simulator (see :mod:`repro.quantum.backend`; all backends
    return identical results for a fixed seed).

    The user-facing ``seed`` feeds two *independent* streams: the
    [HPRW14] preparation's sampling randomness and the quantum schedule's
    measurement randomness.  Earlier revisions seeded both with the raw
    value, so the schedule's measurement draws replayed the preparation's
    sampling draws verbatim (the same aliasing the sweep layer fixed for
    its ``--seed`` in the graph-vs-algorithm split).
    """
    if isinstance(network, Graph):
        network = Network(network)
    rng = random.Random(task_seed(seed, "theorem4-schedule-stream"))
    preparation_seed = task_seed(seed, "theorem4-preparation-stream")
    n = network.num_nodes
    metrics = ExecutionMetrics()

    # A leader and its eccentricity give the 2-approximation of D needed to
    # pick s; this is part of the preparation cost.
    election = run_leader_election(network)
    metrics = metrics.merged(election.metrics)
    leader_ecc = run_eccentricity(network, election.leader)
    metrics = metrics.merged(leader_ecc.metrics)
    if s is None:
        s = default_s_parameter(n, leader_ecc.eccentricity)

    preparation = run_hprw_preparation(
        network, s=s, seed=preparation_seed, leader=election.leader
    )
    metrics = metrics.merged(preparation.metrics)

    ecc_w = run_eccentricity(network, preparation.w, tree=preparation.w_tree)
    metrics = metrics.merged(ecc_w.metrics)

    problem = BallEccentricityProblem(network, preparation, oracle_mode=oracle_mode)
    optimization = run_distributed_quantum_optimization(
        problem, delta=delta, rng=rng, budget_constant=budget_constant,
        runner=runner, backend=backend,
    )
    metrics = metrics.merged(optimization.metrics)

    estimate = max(
        preparation.max_ecc_over_samples,
        ecc_w.eccentricity,
        int(optimization.best_value),
    )
    counts = optimization.counts
    return QuantumApproxDiameterResult(
        estimate=estimate,
        ball_size=len(preparation.ball),
        s_parameter=s,
        w=preparation.w,
        counts=counts,
        metrics=metrics,
        preparation=preparation,
        optimization=optimization,
    )
