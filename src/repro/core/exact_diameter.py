"""Theorem 1: quantum exact diameter computation in ``O~(sqrt(n D))`` rounds.

The algorithm (Section 3) instantiates the distributed quantum optimization
framework of Theorem 7 with:

* **Initialization** -- elect a leader, build ``BFS(leader)`` (Figure 1),
  compute ``d = ecc(leader)`` and broadcast it: ``O(D)`` rounds;
* **Setup** -- broadcast the internal register over ``BFS(leader)`` with
  CNOT copies (Proposition 2): ``O(D)`` rounds;
* **Evaluation** -- two variants:

  - the *simple* variant of Section 3.1 evaluates ``f(u0) = ecc(u0)``
    (``P_opt >= 1/n``, total ``O~(sqrt(n) * D)`` rounds);
  - the *final* variant of Section 3.2 evaluates
    ``f(u0) = max_{v in S(u0)} ecc(v)`` with the Figure-2 procedure
    (``P_opt >= d / 2n``, total ``O~(sqrt(n d)) = O~(sqrt(n D))`` rounds).

Both variants are simulated exactly: the amplitude-amplification schedule
(including its failure probability) is reproduced faithfully, the classical
distributed procedures are actually executed on the CONGEST simulator, and
the reported rounds follow Theorem 7's accounting
``T0 + (#Setup + #Evaluation calls) * T``.

Two oracle modes control how branch values ``f(u0)`` are obtained:

* ``"congest"`` runs the Figure-2 Evaluation procedure on the simulator for
  every distinct ``u0`` the schedule touches (slow but end-to-end);
* ``"reference"`` computes the same values from the sequential distance
  oracle (after verifying the window sets with the same Euler tour), and
  measures the per-call cost from one representative CONGEST run.  The two
  modes return identical values; the test-suite checks this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max, run_tree_broadcast
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.evaluation import run_evaluation_procedure
from repro.algorithms.leader_election import run_leader_election
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.core.coverage import popt_lower_bound, window_set
from repro.graphs.graph import Graph, NodeId
from repro.qcongest.framework import (
    DistributedOptimizationResult,
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast
from repro.quantum.cost_model import QuantumResourceCount, leader_memory_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.batch import BatchRunner

#: Evaluation variants.
VARIANT_SIMPLE = "simple"
VARIANT_WINDOWED = "windowed"

#: Oracle modes.
ORACLE_CONGEST = "congest"
ORACLE_REFERENCE = "reference"


@dataclass
class QuantumDiameterResult:
    """Outcome of the quantum exact-diameter algorithm."""

    diameter: int
    leader: NodeId
    window_parameter: int
    variant: str
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    optimization: DistributedOptimizationResult

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds used."""
        return self.metrics.rounds

    @property
    def memory_bits_per_node(self) -> int:
        """Maximum per-node (qu)bit memory observed / modelled."""
        return self.metrics.max_node_memory_bits


class ExactDiameterProblem(DistributedSearchProblem):
    """The Theorem-1 instantiation of the Theorem-7 framework."""

    def __init__(
        self,
        network: Network,
        variant: str = VARIANT_WINDOWED,
        oracle_mode: str = ORACLE_CONGEST,
        leader: Optional[NodeId] = None,
    ) -> None:
        if variant not in (VARIANT_SIMPLE, VARIANT_WINDOWED):
            raise ValueError(f"unknown variant {variant!r}")
        if oracle_mode not in (ORACLE_CONGEST, ORACLE_REFERENCE):
            raise ValueError(f"unknown oracle mode {oracle_mode!r}")
        self.network = network
        self.variant = variant
        self.oracle_mode = oracle_mode
        self._given_leader = leader
        self.leader: Optional[NodeId] = None
        self.tree: Optional[BFSTreeResult] = None
        self.window_parameter: int = 0
        self._reference_eccentricities: Optional[Dict[NodeId, int]] = None
        self._reference_cost: Optional[ExecutionMetrics] = None
        self._setup_cost: Optional[ExecutionMetrics] = None
        # End-to-end simulation evaluates every branch independently on the
        # CONGEST simulator, so branches may run in pool workers; the
        # reference oracle amortises one representative run over all
        # branches, which per-worker copies would re-pay and mis-count.
        self.supports_parallel_evaluation = oracle_mode == ORACLE_CONGEST

    # ------------------------------------------------------------------
    def initialization(self) -> ExecutionMetrics:
        """Leader election, ``BFS(leader)``, ``d = ecc(leader)``, broadcast of ``d``."""
        metrics = ExecutionMetrics()
        if self._given_leader is None:
            election = run_leader_election(self.network)
            self.leader = election.leader
            metrics = metrics.merged(election.metrics)
        else:
            self.leader = self._given_leader

        self.tree = run_bfs_tree(self.network, self.leader)
        metrics = metrics.merged(self.tree.metrics)

        eccentricity = run_tree_aggregate_max(
            self.network, self.tree, self.tree.distance
        )
        metrics = metrics.merged(eccentricity.metrics)
        self.window_parameter = max(1, eccentricity.value)

        announce = run_tree_broadcast(
            self.network, self.tree, ("d-is", self.window_parameter)
        )
        metrics = metrics.merged(announce.metrics)
        metrics.record_phase("initialization", metrics.rounds)
        return metrics

    # ------------------------------------------------------------------
    def search_space(self) -> List[NodeId]:
        return list(self.network.graph.nodes())

    def setup_amplitudes(self) -> Dict[NodeId, float]:
        nodes = self.search_space()
        weight = 1.0 / (len(nodes) ** 0.5)
        return {node: weight for node in nodes}

    def setup_cost(self) -> ExecutionMetrics:
        if self._setup_cost is None:
            metrics, _ = run_setup_broadcast(self.network, self.tree, self.tree.root)
            self._setup_cost = metrics
        return self._setup_cost

    # ------------------------------------------------------------------
    def evaluate(self, item: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.tree is None:
            raise RuntimeError("initialization must run before evaluation")
        if self.variant == VARIANT_SIMPLE:
            return self._evaluate_simple(item)
        return self._evaluate_windowed(item)

    def _evaluate_simple(self, u0: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.oracle_mode == ORACLE_CONGEST:
            eccentricity = run_eccentricity(self.network, u0)
            metrics = eccentricity.metrics
            # Routing the result back to the leader costs at most the depth
            # of BFS(leader); we charge it by one extra convergecast.
            report = run_tree_aggregate_max(
                self.network, self.tree,
                {
                    node: (eccentricity.eccentricity if node == u0 else 0)
                    for node in self.network.graph.nodes()
                },
            )
            metrics = metrics.merged(report.metrics)
            return float(eccentricity.eccentricity), metrics
        value = float(self._eccentricities()[u0])
        return value, self._representative_cost()

    def _evaluate_windowed(self, u0: NodeId) -> Tuple[float, ExecutionMetrics]:
        if self.oracle_mode == ORACLE_CONGEST:
            evaluation = run_evaluation_procedure(
                self.network, self.tree, self.window_parameter, u0
            )
            return float(evaluation.value), evaluation.metrics
        eccentricities = self._eccentricities()
        window = window_set(self.tree, u0, 2 * self.window_parameter)
        value = float(max(eccentricities[node] for node in window))
        return value, self._representative_cost()

    # ------------------------------------------------------------------
    def optimum_mass_lower_bound(self) -> float:
        n = self.network.num_nodes
        if self.variant == VARIANT_SIMPLE:
            return 1.0 / n
        return popt_lower_bound(n, self.window_parameter)

    def internal_register_bits(self) -> int:
        return leader_memory_bits(
            self.network.num_nodes, self.optimum_mass_lower_bound()
        )

    # ------------------------------------------------------------------
    def _eccentricities(self) -> Dict[NodeId, int]:
        if self._reference_eccentricities is None:
            self._reference_eccentricities = self.network.graph.compile().all_eccentricities()
        return self._reference_eccentricities

    def _representative_cost(self) -> ExecutionMetrics:
        """One real CONGEST run of the Evaluation procedure, reused as the
        per-call cost in reference-oracle mode (the procedure has a fixed,
        input-independent schedule)."""
        if self._reference_cost is None:
            if self.variant == VARIANT_SIMPLE:
                sample = run_eccentricity(self.network, self.tree.root)
                self._reference_cost = sample.metrics
            else:
                sample = run_evaluation_procedure(
                    self.network, self.tree, self.window_parameter, self.tree.root
                )
                self._reference_cost = sample.metrics
        return self._reference_cost


def quantum_exact_diameter(
    network: Union[Network, Graph],
    variant: str = VARIANT_WINDOWED,
    oracle_mode: str = ORACLE_CONGEST,
    delta: float = 0.1,
    seed: int = 0,
    leader: Optional[NodeId] = None,
    budget_constant: float = 4.0,
    runner: Optional["BatchRunner"] = None,
    backend: Optional[str] = None,
) -> QuantumDiameterResult:
    """Compute the diameter with the quantum algorithm of Theorem 1.

    Parameters
    ----------
    network:
        A :class:`repro.congest.network.Network` or a bare
        :class:`repro.graphs.graph.Graph` (wrapped with default bandwidth).
    variant:
        ``"windowed"`` (the final ``O~(sqrt(n D))`` algorithm of Section
        3.2, default) or ``"simple"`` (the ``O~(sqrt(n) D)`` algorithm of
        Section 3.1).
    oracle_mode:
        ``"congest"`` (end-to-end simulation) or ``"reference"`` (identical
        values from the sequential oracle, for large sweeps).
    delta:
        Target failure probability of the optimization.
    seed:
        Seed of the simulated quantum measurements.
    leader:
        Optionally skip leader election and use this node.
    budget_constant:
        Hidden constant of the amplitude-amplification budget.
    runner:
        Optional :class:`repro.runner.batch.BatchRunner`; in ``"congest"``
        oracle mode the independent branch evaluations are dispatched
        through its process pool with results identical to a serial run.
    backend:
        Quantum schedule backend (:mod:`repro.quantum.backend`):
        ``"sampling"``, ``"batched"``, a backend instance, or ``None``
        for the process default.  Backends return identical results for a
        fixed seed; only wall-clock differs.

    Returns
    -------
    QuantumDiameterResult
        The computed diameter (correct with probability ``>= 1 - delta`` up
        to schedule constants), total round count and resource counts.
    """
    if isinstance(network, Graph):
        network = Network(network)
    problem = ExactDiameterProblem(
        network, variant=variant, oracle_mode=oracle_mode, leader=leader
    )
    optimization = run_distributed_quantum_optimization(
        problem,
        delta=delta,
        rng=random.Random(seed),
        budget_constant=budget_constant,
        runner=runner,
        backend=backend,
    )
    return QuantumDiameterResult(
        diameter=int(optimization.best_value),
        leader=problem.leader,
        window_parameter=problem.window_parameter,
        variant=variant,
        counts=optimization.counts,
        metrics=optimization.metrics,
        optimization=optimization,
    )
