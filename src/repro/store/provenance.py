"""Run provenance for persisted experiments.

Every sweep written to an :class:`repro.store.ExperimentStore` starts
with a header line recording *how* the records were produced: the grid
(specs, algorithms, base seed), the execution configuration (engine,
worker count) and the environment (git describe, Python version).  A
record set without provenance is unreproducible; a record set with it
can be re-run, extended or audited months later.
"""

from __future__ import annotations

import platform
import subprocess
from typing import Any, Dict, Optional

#: Keys the experiment service may stamp onto run headers; anything else
#: passed to :func:`set_run_context` is rejected so the header schema
#: stays enumerable.
RUN_CONTEXT_KEYS = ("tenant", "job_id")

_RUN_CONTEXT: Dict[str, Any] = {}


def set_run_context(**context: Any) -> Dict[str, Any]:
    """Install service context (tenant, job id) stamped on run headers.

    The experiment service sets this in each job's worker process before
    executing the grid, so every run-attempt header records *who*
    submitted the work and *which* job produced it -- records themselves
    stay byte-identical to a local run (the context only reaches
    headers, never records).  Returns the previous context so callers
    can restore it; passing a key as ``None`` clears it.
    """
    unknown = set(context) - set(RUN_CONTEXT_KEYS)
    if unknown:
        raise ValueError(
            f"unknown run-context keys {sorted(unknown)} "
            f"(allowed: {list(RUN_CONTEXT_KEYS)})"
        )
    previous = dict(_RUN_CONTEXT)
    for key, value in context.items():
        if value is None:
            _RUN_CONTEXT.pop(key, None)
        else:
            _RUN_CONTEXT[key] = value
    return previous


def get_run_context() -> Dict[str, Any]:
    """The currently installed service run context (may be empty)."""
    return dict(_RUN_CONTEXT)


def clear_run_context() -> None:
    """Drop any installed service run context (used by tests)."""
    _RUN_CONTEXT.clear()


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or ``None``.

    Failure (no git binary, not a repository, timeout) is expected in
    deployed environments and never raises -- provenance should describe
    the run, not break it.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def collect_provenance() -> Dict[str, Any]:
    """Environment facts stamped on every run header.

    Records the *full* process-default execution configuration -- engine,
    quantum schedule backend, compute tier and fault model -- not just
    the engine: a sweep run under ``--backend numpy-sim``, ``--tier
    numpy`` or ``--loss 0.05`` is not reproducible from a header that
    omits those selections.  The fault model is stamped as its canonical
    description string (``"none"`` for the null model), which is exactly
    the token that distinguishes faulty task keys.
    """
    from repro.engine import get_default_engine
    from repro.faults import get_default_fault_model
    from repro.quantum.backend import get_default_schedule_backend
    from repro.tier import get_default_tier

    provenance = {
        "engine": get_default_engine(),
        "schedule_backend": get_default_schedule_backend(),
        "tier": get_default_tier(),
        "fault_model": get_default_fault_model().describe(),
        "git": git_describe(),
        "python": platform.python_version(),
    }
    # Service context (submitting tenant, job id) when a daemon worker
    # installed one; absent for local runs so existing headers are
    # unchanged byte-for-byte.
    provenance.update(_RUN_CONTEXT)
    return provenance
