"""Run provenance for persisted experiments.

Every sweep written to an :class:`repro.store.ExperimentStore` starts
with a header line recording *how* the records were produced: the grid
(specs, algorithms, base seed), the execution configuration (engine,
worker count) and the environment (git describe, Python version).  A
record set without provenance is unreproducible; a record set with it
can be re-run, extended or audited months later.
"""

from __future__ import annotations

import platform
import subprocess
from typing import Any, Dict, Optional


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or ``None``.

    Failure (no git binary, not a repository, timeout) is expected in
    deployed environments and never raises -- provenance should describe
    the run, not break it.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def collect_provenance() -> Dict[str, Any]:
    """Environment facts stamped on every run header.

    Records the *full* process-default execution configuration -- engine,
    quantum schedule backend, compute tier and fault model -- not just
    the engine: a sweep run under ``--backend numpy-sim``, ``--tier
    numpy`` or ``--loss 0.05`` is not reproducible from a header that
    omits those selections.  The fault model is stamped as its canonical
    description string (``"none"`` for the null model), which is exactly
    the token that distinguishes faulty task keys.
    """
    from repro.engine import get_default_engine
    from repro.faults import get_default_fault_model
    from repro.quantum.backend import get_default_schedule_backend
    from repro.tier import get_default_tier

    return {
        "engine": get_default_engine(),
        "schedule_backend": get_default_schedule_backend(),
        "tier": get_default_tier(),
        "fault_model": get_default_fault_model().describe(),
        "git": git_describe(),
        "python": platform.python_version(),
    }
