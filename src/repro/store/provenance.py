"""Run provenance for persisted experiments.

Every sweep written to an :class:`repro.store.ExperimentStore` starts
with a header line recording *how* the records were produced: the grid
(specs, algorithms, base seed), the execution configuration (engine,
worker count) and the environment (git describe, Python version).  A
record set without provenance is unreproducible; a record set with it
can be re-run, extended or audited months later.
"""

from __future__ import annotations

import platform
import subprocess
from typing import Any, Dict, Optional


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or ``None``.

    Failure (no git binary, not a repository, timeout) is expected in
    deployed environments and never raises -- provenance should describe
    the run, not break it.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def collect_provenance() -> Dict[str, Any]:
    """Environment facts stamped on every run header."""
    from repro.engine import get_default_engine

    return {
        "engine": get_default_engine(),
        "git": git_describe(),
        "python": platform.python_version(),
    }
