"""The append-only JSONL experiment store.

One store file holds one experiment: a sweep grid's records plus the
provenance of every run attempt that produced them.  The file is a
sequence of JSON lines, each tagged with a ``kind``:

* ``run`` -- a run-attempt header: grid signature, specs, algorithms,
  base seed, worker count, engine, git describe (see
  :mod:`repro.store.provenance`).  Appended once per attempt, so the file
  carries the full history of interruptions and resumes.
* ``record`` -- one completed sweep cell: its stable task key, its grid
  index and the serialized :class:`repro.analysis.sweep.SweepRecord`.
* ``row`` -- one free-form measurement dict (used by the benchmark
  harnesses, which persist fitted-exponent rows rather than raw records).
* ``finish`` -- a completion footer with the wall time and record counts.

Records are appended (and flushed) the moment they complete, so a killed
process loses at most the cells still in flight; the scanner tolerates a
truncated final line, which is the only corruption an append-only writer
can produce.  Resume reads the completed task keys back and the sweep
layer skips them -- see :func:`repro.analysis.sweep.run_sweep_grid`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepRecord
from repro.store.provenance import collect_provenance
from repro.store.records import (
    canonical_json,
    record_from_dict,
    record_to_dict,
    spec_to_dict,
)

#: Store file schema, bumped on incompatible layout changes.
SCHEMA_VERSION = 1


class ExperimentStoreError(ValueError):
    """A store file cannot be used as requested (mixed grids, no resume)."""


class ExperimentStore:
    """Append-only JSONL persistence for sweep records and run provenance.

    The store is deliberately file-handle-free between operations: every
    append opens the file, writes one line and flushes, so concurrent
    readers always see a prefix of complete lines and a crashed writer
    cannot hold the file hostage.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    # -- low-level line access -----------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def _append(self, obj: Dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            # A writer killed mid-line leaves a tail with no newline; start
            # a fresh line so the new entry cannot merge into (and be lost
            # with) the truncated one.
            if handle.tell() > 0 and not self._ends_with_newline():
                handle.write("\n")
            handle.write(canonical_json(obj))
            handle.write("\n")
            handle.flush()

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"

    def iter_entries(self) -> Iterator[Dict[str, Any]]:
        """Parsed store lines, skipping a truncated (killed-writer) tail."""
        if not self.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Append-only writers can only corrupt the tail (a
                    # line cut short by a kill); drop it and continue so
                    # resume recomputes that cell.
                    continue
                if isinstance(entry, dict):
                    yield entry

    # -- reading --------------------------------------------------------
    def run_headers(self) -> List[Dict[str, Any]]:
        """Every run-attempt header, oldest first."""
        return [entry for entry in self.iter_entries() if entry.get("kind") == "run"]

    def latest_header(self) -> Optional[Dict[str, Any]]:
        headers = self.run_headers()
        return headers[-1] if headers else None

    def completed(self) -> Dict[str, Tuple[int, SweepRecord]]:
        """Completed cells: task key -> ``(grid index, record)``.

        Keys are unique per grid; should duplicate appends ever occur
        (e.g. two racing resumes), the first write wins so the result is
        independent of any later, redundant recomputation.
        """
        _, table = self._scan()
        return table

    def _scan(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Tuple[int, SweepRecord]]]:
        """One pass over the file: ``(latest run header, completed cells)``."""
        header: Optional[Dict[str, Any]] = None
        table: Dict[str, Tuple[int, SweepRecord]] = {}
        for entry in self.iter_entries():
            kind = entry.get("kind")
            if kind == "run":
                header = entry
                continue
            if kind != "record":
                continue
            key = entry["key"]
            if key in table:
                continue
            try:
                record = record_from_dict(entry["record"])
            except (KeyError, TypeError, ValueError):
                continue
            table[key] = (int(entry["index"]), record)
        return header, table

    def load_records(self) -> List[SweepRecord]:
        """All persisted records in grid order (the sweep's task order)."""
        completed = self.completed()
        return [record for _, record in sorted(completed.values(), key=lambda item: item[0])]

    def load_rows(self) -> List[Dict[str, Any]]:
        """All free-form benchmark rows, in append order."""
        return [
            entry["row"]
            for entry in self.iter_entries()
            if entry.get("kind") == "row" and isinstance(entry.get("row"), dict)
        ]

    # -- writing --------------------------------------------------------
    def begin_sweep(
        self,
        specs: Sequence,
        algorithms: Sequence[str],
        base_seed: int,
        signature: str,
        jobs: int,
        resume: bool = False,
    ) -> Dict[str, SweepRecord]:
        """Open a run attempt; return the already-completed cells.

        A non-empty store can only be continued with ``resume=True``, and
        only when its grid signature matches -- resuming a store written
        for a different grid would silently mix incompatible records.
        """
        header, completed = self._scan()
        if header is not None or completed:
            if not resume:
                raise ExperimentStoreError(
                    f"store {self.path!r} already holds an experiment; "
                    "resume it (--resume / resume=True) or use a fresh path"
                )
            previous = header.get("signature") if header else None
            if previous is not None and previous != signature:
                raise ExperimentStoreError(
                    f"store {self.path!r} holds a different grid "
                    f"(signature {previous} != {signature}); refusing to mix"
                )
        provenance = collect_provenance()
        self._append(
            {
                "kind": "run",
                "schema": SCHEMA_VERSION,
                "signature": signature,
                "specs": [spec_to_dict(spec) for spec in specs],
                "algorithms": list(algorithms),
                "base_seed": base_seed,
                "jobs": jobs,
                "resume": bool(resume),
                **provenance,
            }
        )
        return {key: record for key, (_, record) in completed.items()}

    def append_record(self, key: str, index: int, record: SweepRecord) -> None:
        """Persist one completed cell (flushed immediately)."""
        self._append(
            {
                "kind": "record",
                "key": key,
                "index": int(index),
                "record": record_to_dict(record),
            }
        )

    def append_row(self, key: str, row: Dict[str, Any]) -> None:
        """Persist one free-form benchmark measurement row."""
        self._append({"kind": "row", "key": key, "row": row})

    def finish_sweep(
        self, wall_seconds: float, total_records: int, resumed_records: int
    ) -> None:
        """Append the completion footer of the current run attempt."""
        self._append(
            {
                "kind": "finish",
                "wall_seconds": round(float(wall_seconds), 6),
                "total_records": int(total_records),
                "resumed_records": int(resumed_records),
            }
        )
