"""The append-only JSONL experiment store.

One store file holds one experiment: a sweep grid's records plus the
provenance of every run attempt that produced them.  The file is a
sequence of JSON lines, each tagged with a ``kind``:

* ``run`` -- a run-attempt header: grid signature, specs, algorithms,
  base seed, worker count, engine, git describe (see
  :mod:`repro.store.provenance`).  Appended once per attempt, so the file
  carries the full history of interruptions and resumes.
* ``record`` -- one completed sweep cell: its stable task key, its grid
  index and the serialized :class:`repro.analysis.sweep.SweepRecord`.
* ``row`` -- one free-form measurement dict (used by the benchmark
  harnesses, which persist fitted-exponent rows rather than raw records).
* ``finish`` -- a completion footer with the wall time and record counts.

Records are appended (and flushed) the moment they complete, so a killed
process loses at most the cells still in flight; the scanner tolerates a
truncated final line, which is the only corruption an append-only writer
can produce.  Resume reads the completed task keys back and the sweep
layer skips them -- see :func:`repro.analysis.sweep.run_sweep_grid`.
"""

from __future__ import annotations

import errno
import json
import os
import platform
import re
import time
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepRecord
from repro.store.provenance import collect_provenance
from repro.store.records import (
    canonical_json,
    record_from_dict,
    record_to_dict,
    spec_to_dict,
)

#: Store file schema, bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: Tenant namespaces are plain path components: no separators, no leading
#: dot, so a tenant name can never escape the store root.
_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class ExperimentStoreError(ValueError):
    """A store file cannot be used as requested (mixed grids, no resume)."""


class StoreLockError(ExperimentStoreError):
    """Another writer holds the store's advisory lock."""


def append_jsonl_line(path: str, obj: Dict[str, Any]) -> None:
    """Append one canonical JSON line to ``path`` and flush it.

    The shared append primitive of the experiment store and the service
    job ledger: open, write one line, flush, close -- no handle survives
    between appends, so concurrent readers always see a prefix of
    complete lines.  A previous writer killed mid-line leaves a tail with
    no newline; a fresh line is started first so the new entry cannot
    merge into (and be lost with) the truncated one.
    """
    with open(path, "a", encoding="utf-8") as handle:
        if handle.tell() > 0 and not _ends_with_newline(path):
            handle.write("\n")
        handle.write(canonical_json(obj))
        handle.write("\n")
        handle.flush()


def _ends_with_newline(path: str) -> bool:
    with open(path, "rb") as handle:
        handle.seek(-1, os.SEEK_END)
        return handle.read(1) == b"\n"


def iter_jsonl_entries(path: str) -> Iterator[Dict[str, Any]]:
    """Parsed JSON-object lines of ``path``, tolerating a truncated tail.

    The shared reader of the experiment store and the service job ledger.
    Append-only writers can only corrupt the final line (cut short by a
    kill); unparseable lines are dropped so a consumer recomputes the
    lost entry instead of crashing on it.  Non-object lines are skipped
    for the same reason.
    """
    if not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                yield entry


class StoreWriterLock:
    """An advisory, cross-process writer lock for an append-only file.

    The lock is a sidecar ``<path>.lock`` file created with
    ``O_CREAT | O_EXCL`` (atomic on POSIX and NT) whose content names the
    holder (pid, host).  Two cooperating writers -- daemon workers and
    ``repro sweep --out`` both acquire it through
    :meth:`ExperimentStore.acquire_writer` -- can therefore never
    interleave appends to one shard.  A lock whose holder pid is dead
    (same host) is stale -- the previous writer was killed without
    cleanup -- and is silently broken, so crashes never wedge a store.
    """

    def __init__(self, path: str, timeout: float = 0.0, poll: float = 0.05) -> None:
        self.path = os.fspath(path)
        self.lock_path = self.path + ".lock"
        self.timeout = timeout
        self.poll = poll
        self._held = False

    # -- acquisition ---------------------------------------------------
    def acquire(self) -> "StoreWriterLock":
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                self._held = True
                return self
            holder = self._read_holder()
            if holder is None:
                if not os.path.exists(self.lock_path):
                    continue  # released between attempts -- retry now
                # Unreadable content: either a torn lock write (stale) or
                # the creator between open and write -- give it one beat
                # to finish before declaring the lock dead.
                time.sleep(min(self.poll, 0.05))
                if self._read_holder() is None and os.path.exists(self.lock_path):
                    self._break_stale()
                continue
            if self._is_stale(holder):
                self._break_stale()
                continue
            if time.monotonic() >= deadline:
                pid = holder.get("pid") if holder else "unknown"
                raise StoreLockError(
                    f"store {self.path!r} is locked by another writer "
                    f"(pid {pid}, lock file {self.lock_path!r}); two "
                    "writers must never interleave appends to one shard"
                )
            time.sleep(self.poll)

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as error:
            if error.errno == errno.EEXIST:
                return False
            raise
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(
                canonical_json({"pid": os.getpid(), "host": platform.node()})
            )
        return True

    def _read_holder(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.lock_path, "r", encoding="utf-8") as handle:
                holder = json.loads(handle.read())
        except (OSError, json.JSONDecodeError):
            return None
        return holder if isinstance(holder, dict) else None

    def _is_stale(self, holder: Dict[str, Any]) -> bool:
        """Whether the holder is provably dead (same host, no such pid)."""
        if holder.get("host") != platform.node():
            return False
        pid = holder.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return True  # unreadable holder: a torn lock write, break it
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False
        return False

    def _break_stale(self) -> None:
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass  # a racing writer broke it first

    # -- release -------------------------------------------------------
    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "StoreWriterLock":
        if not self._held:
            self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ExperimentStore:
    """Append-only JSONL persistence for sweep records and run provenance.

    The store is deliberately file-handle-free between operations: every
    append opens the file, writes one line and flushes, so concurrent
    readers always see a prefix of complete lines and a crashed writer
    cannot hold the file hostage.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    @classmethod
    def namespaced(cls, root, tenant: str, name: str) -> "ExperimentStore":
        """A store under ``root/tenant/name.jsonl`` (per-tenant namespacing).

        The experiment service gives every tenant its own directory so
        one tenant's shards can be listed, quota-ed or deleted without
        touching another's.  Tenant names are validated as single path
        components (no separators, no leading dot) so a request can
        never escape the store root.
        """
        if not _TENANT_PATTERN.match(tenant):
            raise ExperimentStoreError(
                f"invalid tenant name {tenant!r}: use letters, digits, "
                "'_', '-' or '.' (max 64 chars, no leading '.')"
            )
        directory = os.path.join(os.fspath(root), tenant)
        os.makedirs(directory, exist_ok=True)
        if not name.endswith(".jsonl"):
            name += ".jsonl"
        return cls(os.path.join(directory, name))

    # -- low-level line access -----------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def acquire_writer(
        self, timeout: float = 0.0, poll: float = 0.05
    ) -> StoreWriterLock:
        """The advisory writer lock of this store (not yet acquired).

        Use as a context manager::

            with store.acquire_writer():
                ...append...

        Raises :class:`StoreLockError` -- naming the holder pid -- when
        another live writer holds the lock past ``timeout`` seconds.
        """
        return StoreWriterLock(self.path, timeout=timeout, poll=poll)

    def _append(self, obj: Dict[str, Any]) -> None:
        append_jsonl_line(self.path, obj)

    def iter_entries(self) -> Iterator[Dict[str, Any]]:
        """Parsed store lines, skipping a truncated (killed-writer) tail."""
        return iter_jsonl_entries(self.path)

    # -- reading --------------------------------------------------------
    def run_headers(self) -> List[Dict[str, Any]]:
        """Every run-attempt header, oldest first."""
        return [entry for entry in self.iter_entries() if entry.get("kind") == "run"]

    def latest_header(self) -> Optional[Dict[str, Any]]:
        headers = self.run_headers()
        return headers[-1] if headers else None

    def completed(self) -> Dict[str, Tuple[int, SweepRecord]]:
        """Completed cells: task key -> ``(grid index, record)``.

        Keys are unique per grid; should duplicate appends ever occur
        (e.g. two racing resumes), the first write wins so the result is
        independent of any later, redundant recomputation.
        """
        _, table = self._scan()
        return table

    def completed_keys(self) -> FrozenSet[str]:
        """Task keys of the completed cells, without parsing the records.

        The cheap progress probe of the experiment service: a daemon
        polls this while a worker appends, so it must not pay record
        deserialization for every scan.  Tolerates concurrent appends
        (it reads whatever complete prefix is on disk).
        """
        return frozenset(
            entry["key"]
            for entry in self.iter_entries()
            if entry.get("kind") == "record" and "key" in entry
        )

    def _scan(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Tuple[int, SweepRecord]]]:
        """One pass over the file: ``(latest run header, completed cells)``."""
        header: Optional[Dict[str, Any]] = None
        table: Dict[str, Tuple[int, SweepRecord]] = {}
        for entry in self.iter_entries():
            kind = entry.get("kind")
            if kind == "run":
                header = entry
                continue
            if kind != "record":
                continue
            key = entry["key"]
            if key in table:
                continue
            try:
                record = record_from_dict(entry["record"])
            except (KeyError, TypeError, ValueError):
                continue
            table[key] = (int(entry["index"]), record)
        return header, table

    def load_records(self) -> List[SweepRecord]:
        """All persisted records in grid order (the sweep's task order)."""
        completed = self.completed()
        return [record for _, record in sorted(completed.values(), key=lambda item: item[0])]

    def load_rows(self) -> List[Dict[str, Any]]:
        """All free-form benchmark rows, in append order."""
        return [
            entry["row"]
            for entry in self.iter_entries()
            if entry.get("kind") == "row" and isinstance(entry.get("row"), dict)
        ]

    # -- writing --------------------------------------------------------
    def begin_sweep(
        self,
        specs: Sequence,
        algorithms: Sequence[str],
        base_seed: int,
        signature: str,
        jobs: int,
        resume: bool = False,
    ) -> Dict[str, SweepRecord]:
        """Open a run attempt; return the already-completed cells.

        A non-empty store can only be continued with ``resume=True``, and
        only when its grid signature matches -- resuming a store written
        for a different grid would silently mix incompatible records.
        """
        header, completed = self._scan()
        if header is not None or completed:
            if not resume:
                raise ExperimentStoreError(
                    f"store {self.path!r} already holds an experiment; "
                    "resume it (--resume / resume=True) or use a fresh path"
                )
            previous = header.get("signature") if header else None
            if previous is not None and previous != signature:
                raise ExperimentStoreError(
                    f"store {self.path!r} holds a different grid "
                    f"(signature {previous} != {signature}); refusing to mix"
                )
        provenance = collect_provenance()
        self._append(
            {
                "kind": "run",
                "schema": SCHEMA_VERSION,
                "signature": signature,
                "specs": [spec_to_dict(spec) for spec in specs],
                "algorithms": list(algorithms),
                "base_seed": base_seed,
                "jobs": jobs,
                "resume": bool(resume),
                **provenance,
            }
        )
        return {key: record for key, (_, record) in completed.items()}

    def append_record(self, key: str, index: int, record: SweepRecord) -> None:
        """Persist one completed cell (flushed immediately)."""
        self._append(
            {
                "kind": "record",
                "key": key,
                "index": int(index),
                "record": record_to_dict(record),
            }
        )

    def append_row(self, key: str, row: Dict[str, Any]) -> None:
        """Persist one free-form benchmark measurement row."""
        self._append({"kind": "row", "key": key, "row": row})

    def finish_sweep(
        self,
        wall_seconds: float,
        total_records: int,
        resumed_records: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append the completion footer of the current run attempt.

        ``extra`` attaches free-form attempt metadata under the footer's
        ``extra`` key -- dispatch workers stamp per-lease timing there
        (worker id, shard id, cells/sec) for ``repro merge --stats``.
        """
        footer: Dict[str, Any] = {
            "kind": "finish",
            "wall_seconds": round(float(wall_seconds), 6),
            "total_records": int(total_records),
            "resumed_records": int(resumed_records),
        }
        if extra:
            footer["extra"] = dict(extra)
        self._append(footer)
