"""Persistent experiment store: JSONL records, provenance, export, resume.

The paper's evaluation is reproduced by sweeping ``(n, D)`` grids; before
this subsystem existed, those records lived only in-process -- a killed
sweep lost everything.  :mod:`repro.store` makes sweeps durable:

* :class:`ExperimentStore` (:mod:`repro.store.jsonl`) -- an append-only
  JSONL file holding every :class:`repro.analysis.sweep.SweepRecord` plus
  run provenance (grid signature, specs, seeds, engine, worker count,
  git describe, wall time).  Records are flushed as they complete, so an
  interrupted run keeps everything it finished.
* checkpoint/resume -- :func:`repro.analysis.sweep.run_sweep_grid` takes
  ``store=``/``resume=``; completed task keys are skipped on restart and
  the merged record set is byte-identical to an uninterrupted run.
* export (:mod:`repro.store.export`) -- CSV / JSON / canonical-JSONL
  renderers, plus ``ExperimentStore.load_records`` to round-trip records
  back into ``sweep_table`` and the fitting helpers.
* shard merge (:mod:`repro.store.merge`) -- fold the per-worker store
  shards of a distributed run (:mod:`repro.dispatch`) back into one
  canonical store, validating grid signatures/seed streams across shard
  headers and deduplicating task keys, byte-identical to a serial run.

CLI surface: ``repro sweep --out run.jsonl [--resume]``,
``repro export --store run.jsonl --format csv`` and
``repro merge SHARD... --out merged.jsonl``.
"""

from repro.store.export import (
    EXPORT_FORMATS,
    export_records,
    render_csv,
    render_json,
    render_jsonl,
    render_records,
)
from repro.store.jsonl import (
    SCHEMA_VERSION,
    ExperimentStore,
    ExperimentStoreError,
    StoreLockError,
    StoreWriterLock,
    append_jsonl_line,
    iter_jsonl_entries,
)
from repro.store.merge import merge_shards, shard_stats
from repro.store.provenance import (
    clear_run_context,
    collect_provenance,
    get_run_context,
    git_describe,
    set_run_context,
)
from repro.store.records import (
    RECORD_FIELDS,
    canonical_json,
    record_from_dict,
    record_to_dict,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "ExperimentStore",
    "ExperimentStoreError",
    "StoreLockError",
    "StoreWriterLock",
    "append_jsonl_line",
    "iter_jsonl_entries",
    "merge_shards",
    "shard_stats",
    "SCHEMA_VERSION",
    "set_run_context",
    "get_run_context",
    "clear_run_context",
    "EXPORT_FORMATS",
    "export_records",
    "render_records",
    "render_csv",
    "render_json",
    "render_jsonl",
    "collect_provenance",
    "git_describe",
    "RECORD_FIELDS",
    "canonical_json",
    "record_to_dict",
    "record_from_dict",
    "spec_to_dict",
    "spec_from_dict",
]
