"""Provenance-aware merge of distributed store shards.

A remote dispatch run (:mod:`repro.dispatch`) leaves one JSONL store
shard per worker, each holding the cells that worker computed plus run
headers stamped with the dispatched grid's signature and seed stream.
:func:`merge_shards` folds those shards back into one canonical store
that is **byte-identical** -- record for record, in grid order -- to what
a serial single-process run of the same grid would have written, because:

* task keys and grid indices derive from cell *identity*, never from
  which worker ran a cell or when (see
  :func:`repro.analysis.sweep.sweep_task_key`);
* every record is deterministic in its key, so duplicates -- a shard
  requeued after a worker death may be recomputed elsewhere while the
  original worker's partial file survives -- are exact copies and
  first-complete-wins deduplication cannot change the data;
* ordering is by integer grid index, independent of shard file order,
  hash randomisation and completion timing.

The merge **refuses** to mix shards whose headers disagree on the grid
signature or the base seed stream: a shard from a different grid (or a
different ``--seed``) would otherwise silently corrupt the output.
Empty or missing shard files are tolerated (a worker that registered but
was never leased a shard writes nothing), as are truncated final lines
(a killed worker's interrupted append), because shards go through the
same tolerant reader as every other store.

CLI surface: ``repro merge SHARD... --out merged.jsonl``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepRecord
from repro.store.jsonl import (
    SCHEMA_VERSION,
    ExperimentStore,
    ExperimentStoreError,
)
from repro.store.provenance import collect_provenance
from repro.store.records import record_to_dict


def merge_shards(
    shard_paths: Sequence[str],
    out_path: Optional[str] = None,
    require_complete: bool = True,
) -> List[SweepRecord]:
    """Merge worker store shards into one canonical record list.

    Returns the records in grid order (exactly
    ``ExperimentStore.load_records()`` of an equivalent serial run) and,
    with ``out_path``, writes a canonical merged store: one run header
    carrying the shard provenance, the records, and a completion footer.

    ``require_complete`` (the default) additionally demands that the
    merged cells cover the grid's index range with no gaps -- a lost
    shard file surfaces as a hard error naming the missing count instead
    of a silently shorter export.  Pass ``False`` to merge partial
    results (e.g. for progress inspection mid-run).

    Raises :class:`ExperimentStoreError` when the shards disagree on the
    grid signature or base seed, when a shard has records but no header,
    or when every shard is empty.
    """
    if not shard_paths:
        raise ExperimentStoreError("no shard paths given to merge")
    headers: List[Tuple[str, Dict[str, Any]]] = []
    merged: Dict[str, Tuple[int, SweepRecord]] = {}
    for path in shard_paths:
        store = ExperimentStore(path)
        header = store.latest_header()
        cells = store.completed()
        if header is None:
            if cells:
                raise ExperimentStoreError(
                    f"shard {path!r} holds records but no run header; "
                    "refusing to merge unattributable cells"
                )
            continue  # empty shard: a worker that was never leased work
        headers.append((path, header))
        for key, (index, record) in cells.items():
            # First-complete wins, like ExperimentStore.completed():
            # requeue races recompute identical records, so which copy
            # survives cannot matter -- but keeping the first makes the
            # choice deterministic in the given shard order.
            merged.setdefault(key, (index, record))
    if not headers:
        raise ExperimentStoreError(
            "nothing to merge: every shard is empty "
            f"({', '.join(repr(path) for path in shard_paths)})"
        )
    _validate_headers(headers)
    by_index = sorted(merged.values(), key=lambda item: item[0])
    if require_complete:
        indices = [index for index, _ in by_index]
        expected = list(range(len(indices)))
        if indices != expected:
            missing = sorted(set(expected) - set(indices))[:5]
            raise ExperimentStoreError(
                f"merged shards cover {len(indices)} cell(s) but indices "
                f"are not contiguous from 0 (first gaps: {missing}); a "
                "shard file is missing or the run is incomplete -- merge "
                "with require_complete=False (--allow-partial) to inspect"
            )
    records = [record for _, record in by_index]
    if out_path is not None:
        _write_merged(out_path, headers, merged, records)
    return records


def _validate_headers(headers: List[Tuple[str, Dict[str, Any]]]) -> None:
    """Refuse shards whose run headers describe different grids."""
    first_path, first = headers[0]
    signature = first.get("signature")
    base_seed = first.get("base_seed")
    for path, header in headers[1:]:
        if header.get("signature") != signature:
            raise ExperimentStoreError(
                f"shard {path!r} holds a different grid (signature "
                f"{header.get('signature')} != {signature} of "
                f"{first_path!r}); refusing to mix"
            )
        if header.get("base_seed") != base_seed:
            raise ExperimentStoreError(
                f"shard {path!r} used a different seed stream (base_seed "
                f"{header.get('base_seed')} != {base_seed} of "
                f"{first_path!r}); refusing to mix"
            )


def _write_merged(
    out_path: str,
    headers: List[Tuple[str, Dict[str, Any]]],
    merged: Dict[str, Tuple[int, SweepRecord]],
    records: List[SweepRecord],
) -> None:
    """Write the canonical merged store (header, records, footer)."""
    first = headers[0][1]
    out = ExperimentStore(out_path)
    if out.exists():
        raise ExperimentStoreError(
            f"merge output {out_path!r} already exists; refusing to append "
            "a merged grid into an existing store"
        )
    with out.acquire_writer():
        out._append({
            "kind": "run",
            "schema": SCHEMA_VERSION,
            "signature": first.get("signature"),
            "specs": first.get("specs", []),
            "algorithms": first.get("algorithms", []),
            "base_seed": first.get("base_seed"),
            "jobs": len(headers),
            "resume": False,
            "merged_from": [
                os.path.basename(path) for path, _ in headers
            ],
            **collect_provenance(),
        })
        by_index = sorted(
            ((index, key, record) for key, (index, record) in merged.items()),
            key=lambda item: item[0],
        )
        for index, key, record in by_index:
            out._append({
                "kind": "record",
                "key": key,
                "index": index,
                "record": record_to_dict(record),
            })
        out._append({
            "kind": "finish",
            "wall_seconds": 0.0,
            "total_records": len(records),
            "resumed_records": 0,
        })
