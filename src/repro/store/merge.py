"""Provenance-aware merge of distributed store shards.

A remote dispatch run (:mod:`repro.dispatch`) leaves one JSONL store
shard per worker, each holding the cells that worker computed plus run
headers stamped with the dispatched grid's signature and seed stream.
:func:`merge_shards` folds those shards back into one canonical store
that is **byte-identical** -- record for record, in grid order -- to what
a serial single-process run of the same grid would have written, because:

* task keys and grid indices derive from cell *identity*, never from
  which worker ran a cell or when (see
  :func:`repro.analysis.sweep.sweep_task_key`);
* every record is deterministic in its key, so duplicates -- a shard
  requeued after a worker death may be recomputed elsewhere while the
  original worker's partial file survives -- are exact copies and
  first-complete-wins deduplication cannot change the data;
* ordering is by integer grid index, independent of shard file order,
  hash randomisation and completion timing.

The merge **refuses** to mix shards whose headers disagree on the grid
signature or the base seed stream: a shard from a different grid (or a
different ``--seed``) would otherwise silently corrupt the output.
Empty or missing shard files are tolerated (a worker that registered but
was never leased a shard writes nothing), as are truncated final lines
(a killed worker's interrupted append), because shards go through the
same tolerant reader as every other store.

Each shard's lease footers (``finish`` entries with an ``extra`` stamp:
worker id, shard id, cells/sec) additionally feed :func:`shard_stats`,
the per-worker execution summary behind ``repro merge --stats``; the
aggregate is stamped into the merged store's run header as
``dispatch_stats`` provenance, including how many duplicate cells were
dropped by the first-complete-wins dedup (work stealing and speculative
re-execution recompute cells on purpose; the copies are identical by
construction).

CLI surface: ``repro merge SHARD... --out merged.jsonl [--stats]``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepRecord
from repro.store.jsonl import (
    SCHEMA_VERSION,
    ExperimentStore,
    ExperimentStoreError,
)
from repro.store.provenance import collect_provenance
from repro.store.records import record_to_dict


def merge_shards(
    shard_paths: Sequence[str],
    out_path: Optional[str] = None,
    require_complete: bool = True,
) -> List[SweepRecord]:
    """Merge worker store shards into one canonical record list.

    Returns the records in grid order (exactly
    ``ExperimentStore.load_records()`` of an equivalent serial run) and,
    with ``out_path``, writes a canonical merged store: one run header
    carrying the shard provenance, the records, and a completion footer.

    ``require_complete`` (the default) additionally demands that the
    merged cells cover the grid's index range with no gaps -- a lost
    shard file surfaces as a hard error naming the missing count instead
    of a silently shorter export.  Pass ``False`` to merge partial
    results (e.g. for progress inspection mid-run).

    Raises :class:`ExperimentStoreError` when the shards disagree on the
    grid signature or base seed, when a shard has records but no header,
    or when every shard is empty.
    """
    if not shard_paths:
        raise ExperimentStoreError("no shard paths given to merge")
    headers: List[Tuple[str, Dict[str, Any]]] = []
    merged: Dict[str, Tuple[int, SweepRecord]] = {}
    for path in shard_paths:
        store = ExperimentStore(path)
        header = store.latest_header()
        cells = store.completed()
        if header is None:
            if cells:
                raise ExperimentStoreError(
                    f"shard {path!r} holds records but no run header; "
                    "refusing to merge unattributable cells"
                )
            continue  # empty shard: a worker that was never leased work
        headers.append((path, header))
        for key, (index, record) in cells.items():
            # First-complete wins, like ExperimentStore.completed():
            # requeue races recompute identical records, so which copy
            # survives cannot matter -- but keeping the first makes the
            # choice deterministic in the given shard order.
            merged.setdefault(key, (index, record))
    if not headers:
        raise ExperimentStoreError(
            "nothing to merge: every shard is empty "
            f"({', '.join(repr(path) for path in shard_paths)})"
        )
    _validate_headers(headers)
    by_index = sorted(merged.values(), key=lambda item: item[0])
    if require_complete:
        indices = [index for index, _ in by_index]
        expected = list(range(len(indices)))
        if indices != expected:
            missing = sorted(set(expected) - set(indices))[:5]
            raise ExperimentStoreError(
                f"merged shards cover {len(indices)} cell(s) but indices "
                f"are not contiguous from 0 (first gaps: {missing}); a "
                "shard file is missing or the run is incomplete -- merge "
                "with require_complete=False (--allow-partial) to inspect"
            )
    records = [record for _, record in by_index]
    if out_path is not None:
        _write_merged(out_path, headers, merged, records,
                      shard_stats(shard_paths))
    return records


def _shard_worker_id(path: str) -> str:
    """The worker id encoded in a shard filename, best-effort.

    Worker shards are named ``shard-<signature>-<worker_id>.jsonl`` (see
    :func:`repro.dispatch.worker.shard_store_path`); the signature is a
    hex digest with no dashes, so splitting once past the prefix is
    unambiguous.  Non-conforming names fall back to the basename.
    """
    base = os.path.basename(path)
    name = base[:-len(".jsonl")] if base.endswith(".jsonl") else base
    if name.startswith("shard-"):
        rest = name[len("shard-"):]
        if "-" in rest:
            return rest.split("-", 1)[1]
    return name


def shard_stats(shard_paths: Sequence[str]) -> Dict[str, Any]:
    """Per-worker execution statistics aggregated from store shards.

    Scans each shard's records and lease footers (``finish`` entries,
    whose ``extra`` stamp carries the worker id, lease cell counts and
    throughput -- see :meth:`ExperimentStore.finish_sweep`) and
    aggregates by worker: unique cells held, fresh-vs-replayed split,
    lease count, wall seconds and cells/sec.  ``duplicate_cells`` counts
    cells present in more than one shard -- the footprint of stolen,
    speculative and requeue re-executions, all dropped first-complete-
    wins at merge time.  Tolerates empty/missing shards and shards
    without footers (a killed worker), like the merge itself.
    """
    workers: Dict[str, Dict[str, Any]] = {}
    unique: set = set()
    total_cells = 0
    for path in shard_paths:
        store = ExperimentStore(path)
        cells = store.completed()
        total_cells += len(cells)
        unique.update(cells.keys())
        worker_id = _shard_worker_id(path)
        leases = 0
        wall = 0.0
        fresh = 0
        lease_cells = 0
        for entry in store.iter_entries():
            if entry.get("kind") != "finish":
                continue
            leases += 1
            wall += float(entry.get("wall_seconds", 0.0))
            extra = entry.get("extra") or {}
            if extra.get("worker"):
                worker_id = str(extra["worker"])
            total = int(entry.get("total_records", 0))
            fresh += int(extra.get("fresh", total))
            lease_cells += int(extra.get("cells", total))
        if not cells and leases == 0:
            continue  # a worker that registered but never got work
        entry = workers.setdefault(worker_id, {
            "cells": 0, "fresh": 0, "replayed": 0,
            "leases": 0, "wall_seconds": 0.0,
        })
        entry["cells"] += len(cells)
        entry["fresh"] += fresh
        # Replays are counted lease by lease (a rejoining worker replays
        # its whole store, which unique-cell arithmetic cannot see).
        entry["replayed"] += max(0, lease_cells - fresh)
        entry["leases"] += leases
        entry["wall_seconds"] += wall
    for entry in workers.values():
        entry["wall_seconds"] = round(entry["wall_seconds"], 6)
        entry["cells_per_second"] = (
            round(entry["cells"] / entry["wall_seconds"], 6)
            if entry["wall_seconds"] > 0 else 0.0
        )
    return {
        "workers": {name: workers[name] for name in sorted(workers)},
        "total_cells": total_cells,
        "unique_cells": len(unique),
        "duplicate_cells": total_cells - len(unique),
    }


def _validate_headers(headers: List[Tuple[str, Dict[str, Any]]]) -> None:
    """Refuse shards whose run headers describe different grids."""
    first_path, first = headers[0]
    signature = first.get("signature")
    base_seed = first.get("base_seed")
    for path, header in headers[1:]:
        if header.get("signature") != signature:
            raise ExperimentStoreError(
                f"shard {path!r} holds a different grid (signature "
                f"{header.get('signature')} != {signature} of "
                f"{first_path!r}); refusing to mix"
            )
        if header.get("base_seed") != base_seed:
            raise ExperimentStoreError(
                f"shard {path!r} used a different seed stream (base_seed "
                f"{header.get('base_seed')} != {base_seed} of "
                f"{first_path!r}); refusing to mix"
            )


def _write_merged(
    out_path: str,
    headers: List[Tuple[str, Dict[str, Any]]],
    merged: Dict[str, Tuple[int, SweepRecord]],
    records: List[SweepRecord],
    stats: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the canonical merged store (header, records, footer)."""
    first = headers[0][1]
    out = ExperimentStore(out_path)
    if out.exists():
        raise ExperimentStoreError(
            f"merge output {out_path!r} already exists; refusing to append "
            "a merged grid into an existing store"
        )
    provenance: Dict[str, Any] = {}
    if stats is not None:
        provenance["dispatch_stats"] = dict(stats)
        if stats.get("duplicate_cells"):
            # Record *why* shards overlapped: stolen, speculative and
            # requeued cells are recomputed on purpose, the copies are
            # identical by construction, and the first-complete-wins
            # dedup above dropped the extras.
            provenance["dispatch_stats"]["dedup"] = (
                "duplicates from stolen/speculative/requeued "
                "re-executions dropped first-complete-wins"
            )
    with out.acquire_writer():
        out._append({
            "kind": "run",
            "schema": SCHEMA_VERSION,
            "signature": first.get("signature"),
            "specs": first.get("specs", []),
            "algorithms": first.get("algorithms", []),
            "base_seed": first.get("base_seed"),
            "jobs": len(headers),
            "resume": False,
            "merged_from": [
                os.path.basename(path) for path, _ in headers
            ],
            **provenance,
            **collect_provenance(),
        })
        by_index = sorted(
            ((index, key, record) for key, (index, record) in merged.items()),
            key=lambda item: item[0],
        )
        for index, key, record in by_index:
            out._append({
                "kind": "record",
                "key": key,
                "index": index,
                "record": record_to_dict(record),
            })
        out._append({
            "kind": "finish",
            "wall_seconds": 0.0,
            "total_records": len(records),
            "resumed_records": 0,
        })
