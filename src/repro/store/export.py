"""Export persisted sweep records to analysis-friendly formats.

Three formats, all byte-deterministic for a given record list:

* ``csv`` -- one row per record, ``extra`` flattened to a canonical JSON
  cell; loads directly into pandas/spreadsheets.
* ``json`` -- an indented JSON array, for human inspection and ad-hoc
  scripting.
* ``jsonl`` -- one canonical JSON object per line.  This is the format
  the checkpoint/resume acceptance check compares byte-for-byte: a
  resumed store and a fresh serial store export to identical files.

The loader side lives in :class:`repro.store.ExperimentStore`
(``load_records``), which round-trips records back into
:func:`repro.analysis.sweep.sweep_table` and the fitting helpers.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Sequence

from repro.analysis.sweep import SweepRecord
from repro.store.records import RECORD_FIELDS, canonical_json, record_to_dict

EXPORT_FORMATS = ("csv", "json", "jsonl")


def render_csv(records: Iterable[SweepRecord]) -> str:
    """The CSV text of a record list (header + one row per record)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(RECORD_FIELDS)
    for record in records:
        data = record_to_dict(record)
        writer.writerow(
            [
                data["family"],
                data["algorithm"],
                data["num_nodes"],
                "" if data["diameter"] is None else data["diameter"],
                data["rounds"],
                data["value"],
                "" if data["correct"] is None else data["correct"],
                canonical_json(data["extra"]),
                data["success"],
                "" if data["failure_reason"] is None else data["failure_reason"],
            ]
        )
    return buffer.getvalue()


def render_json(records: Iterable[SweepRecord]) -> str:
    """An indented JSON array of the record list."""
    payload: List[dict] = [record_to_dict(record) for record in records]
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_jsonl(records: Iterable[SweepRecord]) -> str:
    """Canonical JSONL: one sorted-key JSON object per line.

    Byte-stable for a given record sequence; used for the byte-identity
    comparison between resumed and fresh runs.
    """
    return "".join(canonical_json(record_to_dict(record)) + "\n" for record in records)


_RENDERERS = {"csv": render_csv, "json": render_json, "jsonl": render_jsonl}


def render_records(records: Sequence[SweepRecord], format: str) -> str:
    """Render records in one of :data:`EXPORT_FORMATS`."""
    renderer = _RENDERERS.get(format)
    if renderer is None:
        known = ", ".join(EXPORT_FORMATS)
        raise ValueError(f"unknown export format {format!r} (available: {known})")
    return renderer(records)


def export_records(records: Sequence[SweepRecord], path, format: str) -> None:
    """Write records to ``path`` in the given format."""
    text = render_records(records, format)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)
