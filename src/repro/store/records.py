"""Canonical (de)serialization of sweep records and graph specs.

The experiment store persists :class:`repro.analysis.sweep.SweepRecord`
instances as JSON objects.  Serialization is **canonical** -- fixed field
set, sorted keys, minimal separators -- so that two stores holding the
same records serialize to byte-identical lines regardless of how the
records were produced (serial vs parallel, fresh vs resumed).  That byte
stability is what the checkpoint/resume acceptance test compares.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.analysis.sweep import SweepRecord
from repro.runner.spec import GraphSpec

#: The full field set of a serialized record; kept explicit so loading an
#: object with missing or unknown fields fails loudly instead of silently
#: dropping data.
RECORD_FIELDS = (
    "family",
    "algorithm",
    "num_nodes",
    "diameter",
    "rounds",
    "value",
    "correct",
    "extra",
    "success",
    "failure_reason",
)

#: Fields that may be absent when loading: stores written before the
#: fault-injection layer predate them and every such record succeeded.
_OPTIONAL_FIELDS = ("success", "failure_reason")


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def record_to_dict(record: SweepRecord) -> Dict[str, Any]:
    """A plain-JSON representation of one sweep record."""
    return {
        "family": record.family,
        "algorithm": record.algorithm,
        "num_nodes": record.num_nodes,
        "diameter": record.diameter,
        "rounds": record.rounds,
        "value": record.value,
        "correct": record.correct,
        "extra": dict(record.extra),
        "success": record.success,
        "failure_reason": record.failure_reason,
    }


def record_from_dict(data: Mapping[str, Any]) -> SweepRecord:
    """Rebuild a :class:`SweepRecord` from :func:`record_to_dict` output.

    Round-trips ``None`` diameters/correctness and arbitrary ``extra``
    dicts; raises ``ValueError`` on missing or unexpected fields so that
    a corrupted store line cannot masquerade as a record.  The
    fault-layer fields (``success``, ``failure_reason``) default to a
    successful run when absent, so pre-fault stores stay loadable.
    """
    keys = set(data)
    missing = set(RECORD_FIELDS) - set(_OPTIONAL_FIELDS) - keys
    unknown = keys - set(RECORD_FIELDS)
    if missing or unknown:
        raise ValueError(
            f"malformed record object (missing: {sorted(missing)}, "
            f"unknown: {sorted(unknown)})"
        )
    return SweepRecord(
        family=data["family"],
        algorithm=data["algorithm"],
        num_nodes=int(data["num_nodes"]),
        diameter=None if data["diameter"] is None else int(data["diameter"]),
        rounds=int(data["rounds"]),
        value=float(data["value"]),
        correct=data["correct"],
        extra=dict(data["extra"]),
        success=bool(data.get("success", True)),
        failure_reason=data.get("failure_reason"),
    )


def spec_to_dict(spec: GraphSpec) -> Dict[str, Any]:
    """A plain-JSON representation of one graph spec (for run headers)."""
    return {
        "family": spec.family,
        "num_nodes": spec.num_nodes,
        "diameter": spec.diameter,
        "seed": spec.seed,
    }


def spec_from_dict(data: Mapping[str, Any]) -> GraphSpec:
    """Rebuild a :class:`GraphSpec` from :func:`spec_to_dict` output."""
    return GraphSpec(
        family=data["family"],
        num_nodes=int(data["num_nodes"]),
        diameter=None if data.get("diameter") is None else int(data["diameter"]),
        seed=int(data.get("seed", 0)),
    )
