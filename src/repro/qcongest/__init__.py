"""The quantum CONGEST layer: distributed quantum optimization (Section 2.4).

The paper's quantum algorithms all follow the same template (Theorem 7):

1. a classical **Initialization** phase elects a leader and precomputes
   shared structure (a BFS tree, its depth ``d``, ...);
2. a **Setup** unitary spreads the leader's internal register over the
   network, creating ``(1/sqrt(|X|)) sum_x |x>_leader (tensor)_v |x>_v``;
3. an **Evaluation** unitary lets the leader learn ``f(x)`` for the value
   ``x`` carried by the data registers;
4. the leader drives amplitude amplification / maximum finding locally,
   paying ``T_setup + T_evaluation`` rounds per iteration.

Because the global state is always of the form
``sum_x alpha_x |x>_I (tensor) |data(x)>`` with *classical* per-branch data,
the whole computation can be simulated exactly by tracking one classical
data assignment per branch
(:class:`repro.qcongest.branch_state.DistributedSuperposition`) and the
amplitude vector over branches.  The framework
(:mod:`repro.qcongest.framework`) measures the CONGEST round cost of the
Initialization / Setup / Evaluation procedures by actually running them on
the simulator, simulates the amplitude-amplification schedule exactly
(including its failure probability) through a pluggable schedule backend
(:mod:`repro.quantum.backend` -- the sampling reference or the batched
fast path, byte-identical), and reports total rounds, messages and
per-node memory.

Concrete instantiations -- exact diameter (Theorem 1), the
3/2-approximation (Theorem 4), exact radius and single-source
eccentricity -- live in :mod:`repro.core` and are registered as named,
picklable problems in :mod:`repro.core.problems`.
"""

from repro.qcongest.branch_state import DistributedSuperposition
from repro.qcongest.framework import (
    DistributedOptimizationResult,
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast

__all__ = [
    "DistributedSuperposition",
    "DistributedSearchProblem",
    "DistributedOptimizationResult",
    "run_distributed_quantum_optimization",
    "run_setup_broadcast",
]
