"""Structured (branch-wise) simulation of the distributed quantum state.

Throughout the paper's algorithms the global quantum state has the special
form

    ``sum_{x in X} beta_x |x>_I  (tensor)  |data(x)>_network``

where the internal register ``I`` lives at the leader and, *for each branch
``x``*, every node's registers hold classical strings determined by ``x``
(Proposition 2 creates exactly this shape, and the Evaluation procedure of
Figure 2 computes-then-uncomputes classical data per branch).  Such a state
is completely described by

* the amplitude vector ``beta`` over the labels ``x``, and
* one classical per-node register assignment per label.

:class:`DistributedSuperposition` stores exactly that and implements the
operations the algorithms need -- Setup (CNOT-copy broadcast of the internal
register), per-branch reversible classical computation, the phase oracle,
the reflection about the Setup state (which is what one Grover iteration
applies to the amplitude vector), and measurement of the internal register.
The result is an *exact* simulation of the algorithm's quantum behaviour
whose cost is ``O(|X|)`` times the cost of the classical procedures, instead
of being exponential in the total number of qubits.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.graphs.graph import NodeId

Label = Hashable
BranchData = Dict[NodeId, Hashable]


class DistributedSuperposition:
    """A superposition over labels, each carrying classical per-node data."""

    def __init__(self, amplitudes: Mapping[Label, float]) -> None:
        if not amplitudes:
            raise ValueError("a superposition needs at least one branch")
        total = sum(abs(a) ** 2 for a in amplitudes.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"amplitudes must be normalised, got mass {total}")
        self._amplitudes: Dict[Label, float] = dict(amplitudes)
        self._data: Dict[Label, BranchData] = {label: {} for label in amplitudes}

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, labels) -> "DistributedSuperposition":
        """The uniform superposition produced by the paper's Setup."""
        labels = list(labels)
        if not labels:
            raise ValueError("need at least one label")
        weight = 1.0 / math.sqrt(len(labels))
        return cls({label: weight for label in labels})

    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[Label]:
        """The branch labels."""
        return list(self._amplitudes)

    def amplitude(self, label: Label) -> float:
        """Amplitude of a branch."""
        return self._amplitudes[label]

    def probability(self, label: Label) -> float:
        """Born probability of measuring ``label`` on the internal register."""
        return abs(self._amplitudes[label]) ** 2

    def branch_data(self, label: Label) -> BranchData:
        """The classical per-node register contents of a branch."""
        return dict(self._data[label])

    def total_mass(self, predicate: Callable[[Label], bool]) -> float:
        """Probability mass of the branches satisfying ``predicate``."""
        return sum(
            abs(amplitude) ** 2
            for label, amplitude in self._amplitudes.items()
            if predicate(label)
        )

    def is_normalised(self, tolerance: float = 1e-6) -> bool:
        """Whether the branch amplitudes are normalised."""
        total = sum(abs(a) ** 2 for a in self._amplitudes.values())
        return abs(total - 1.0) < tolerance

    # ------------------------------------------------------------------
    # Distributed operations (applied branch-wise)
    # ------------------------------------------------------------------
    def apply_setup_copy(self, nodes) -> None:
        """CNOT-copy the internal register into every node's data register.

        After Proposition 2's Setup, in branch ``x`` every node of the
        network holds ``|x>``; this sets the per-branch data accordingly
        (the communication cost is accounted separately by the framework).
        """
        node_list = list(nodes)
        for label in self._amplitudes:
            self._data[label] = {node: label for node in node_list}

    def apply_branch_computation(
        self, computation: Callable[[Label, BranchData], BranchData]
    ) -> None:
        """Apply a reversible classical computation to every branch's data."""
        for label in self._amplitudes:
            self._data[label] = dict(computation(label, self._data[label]))

    def uncompute_data(self) -> None:
        """Revert all data registers to |0> (Step 5 of Figure 2)."""
        for label in self._amplitudes:
            self._data[label] = {}

    def apply_phase_oracle(self, predicate: Callable[[Label], bool]) -> None:
        """Flip the sign of every branch whose label satisfies ``predicate``."""
        for label in self._amplitudes:
            if predicate(label):
                self._amplitudes[label] = -self._amplitudes[label]

    def reflect_about(self, reference: Mapping[Label, float]) -> None:
        """Apply ``2 |psi><psi| - I`` where ``psi`` has the given amplitudes.

        Together with :meth:`apply_phase_oracle` this is one Grover iterate
        of the amplitude-amplification procedure run by the leader.  It is
        only valid while the data registers are disentangled from the
        internal register (i.e. after Setup has been inverted / the garbage
        uncomputed), which is exactly when the paper applies it.
        """
        if set(reference) != set(self._amplitudes):
            raise ValueError("the reference state must span the same labels")
        overlap = sum(
            reference[label] * self._amplitudes[label] for label in self._amplitudes
        )
        for label in self._amplitudes:
            self._amplitudes[label] = (
                2.0 * overlap * reference[label] - self._amplitudes[label]
            )

    def grover_iteration(
        self,
        marked: Callable[[Label], bool],
        reference: Optional[Mapping[Label, float]] = None,
    ) -> None:
        """One Grover iterate: phase oracle then reflection about ``reference``.

        ``reference`` defaults to the uniform superposition over the branch
        labels (the paper's Setup state).
        """
        if reference is None:
            weight = 1.0 / math.sqrt(len(self._amplitudes))
            reference = {label: weight for label in self._amplitudes}
        self.apply_phase_oracle(marked)
        self.reflect_about(reference)

    # ------------------------------------------------------------------
    def measure_internal_register(self, rng: random.Random) -> Label:
        """Measure the internal register and collapse the state."""
        labels = list(self._amplitudes)
        weights = [abs(self._amplitudes[label]) ** 2 for label in labels]
        outcome = rng.choices(labels, weights=weights)[0]
        data = self._data[outcome]
        self._amplitudes = {outcome: 1.0}
        self._data = {outcome: data}
        return outcome
