"""Distributed quantum optimization (Theorem 7).

This is the paper's general framework: a leader drives quantum maximum
finding whose Setup and Evaluation unitaries are implemented by distributed
procedures.  The framework

1. runs the problem's **Initialization** once (classically, on the CONGEST
   simulator) and records its round cost ``T0``;
2. measures the round cost of one **Setup** application and of one
   **Evaluation** application by running the corresponding distributed
   procedures;
3. simulates the quantum maximum-finding schedule *exactly* through a
   pluggable :class:`repro.quantum.backend.ScheduleBackend` (the
   ``"sampling"`` reference simulation or the ``"batched"`` precomputed
   one -- both reproduce the amplitude-amplification measurement
   statistics bit for bit), counting every Setup and Evaluation
   application;
4. converts the counts into total CONGEST rounds with the cost model of
   Theorem 7 (``T0 + #calls * T``) and reports per-node memory.

Concrete problems (exact diameter, Theorem 1; 3/2-approximation, Theorem 4)
implement the small :class:`DistributedSearchProblem` interface in
:mod:`repro.core`.

Parallel branch evaluation.  The quantum schedule queries branch values
``f(x)`` adaptively, but the very first amplitude-amplification round
computes the marked mass over the *entire* search space, so every branch
gets evaluated exactly once regardless -- and the evaluations are
independent CONGEST runs.  When a :class:`repro.runner.batch.BatchRunner`
is supplied (and the problem declares
``supports_parallel_evaluation = True``), the framework pre-computes all
branch evaluations through the pool and then serves the schedule's
``value_of`` queries from the pre-computed table **in query order**, so
every reported quantity -- values, per-call cost, distinct evaluations,
simulated run/round counts -- is identical to the serial execution.
Problems whose evaluation shares hidden state across calls (e.g. the
reference-oracle modes, which amortise one representative run over all
branches) must leave the flag unset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.congest.metrics import ExecutionMetrics
from repro.engine import RunLogObserver
from repro.quantum.backend import ScheduleBackend, resolve_schedule_backend
from repro.quantum.cost_model import QuantumCostModel, QuantumResourceCount
from repro.quantum.maximum_finding import MaximumFindingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.batch import BatchRunner

Item = Hashable


class DistributedSearchProblem:
    """Interface of a problem solvable by distributed quantum optimization.

    Concrete subclasses provide the four ingredients of Section 2.4:
    Initialization, the search space and Setup amplitudes, the Setup cost
    and the Evaluation procedure (value + cost).
    """

    #: Whether :meth:`evaluate` calls are independent -- deterministic given
    #: the post-initialization problem state, with no hidden caching shared
    #: across calls -- so they may be dispatched to pool workers.  Problems
    #: opt in after initialization (see the module docstring).
    supports_parallel_evaluation: bool = False

    def initialization(self) -> ExecutionMetrics:
        """Run the classical Initialization phase; return its metrics."""
        raise NotImplementedError

    def search_space(self) -> List[Item]:
        """The set ``X`` over which the optimization runs."""
        raise NotImplementedError

    def setup_amplitudes(self) -> Dict[Item, float]:
        """The amplitudes ``alpha_x`` produced by Setup (normalised)."""
        raise NotImplementedError

    def setup_cost(self) -> ExecutionMetrics:
        """Round cost of one application of Setup (or its inverse)."""
        raise NotImplementedError

    def evaluate(self, item: Item) -> Tuple[float, ExecutionMetrics]:
        """Evaluate ``f(item)`` distributively; return the value and cost."""
        raise NotImplementedError

    def optimum_mass_lower_bound(self) -> float:
        """A lower bound on ``P_opt`` (the ``eps`` of Corollary 1)."""
        raise NotImplementedError

    def internal_register_bits(self) -> int:
        """Size of the leader's internal register in (qu)bits."""
        raise NotImplementedError


@dataclass
class DistributedOptimizationResult:
    """Outcome of one distributed quantum optimization run."""

    best_item: Item
    best_value: float
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    initialization_rounds: int
    setup_rounds_per_call: int
    evaluation_rounds_per_call: int
    distinct_evaluations: int
    #: CONGEST executions actually simulated during the optimization (as
    #: opposed to the *modelled* rounds of ``metrics``), observed via the
    #: engine's metrics pipeline when the problem exposes its network.
    simulated_runs: int = 0
    simulated_rounds: int = 0

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds (Initialization + all Setup/Evaluation calls)."""
        return self.metrics.rounds


def _evaluate_branch(problem: DistributedSearchProblem, item: Item):
    """Evaluate one branch in a pool worker, counting its simulator runs.

    Returns ``(value, metrics, runs, rounds, messages)`` so the parent can
    replay the run-log accounting for branches the schedule actually
    queries, keeping the parallel result identical to the serial one.
    """
    run_log = RunLogObserver()
    network = getattr(problem, "network", None)
    observed = network is not None and hasattr(network, "add_observer")
    if observed:
        network.add_observer(run_log)
    try:
        value, metrics = problem.evaluate(item)
    finally:
        if observed:
            network.remove_observer(run_log)
    return value, metrics, run_log.runs, run_log.rounds, run_log.messages


def run_distributed_quantum_optimization(
    problem: DistributedSearchProblem,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    budget_constant: float = 4.0,
    runner: Optional["BatchRunner"] = None,
    backend: Optional[Union[str, ScheduleBackend]] = None,
) -> DistributedOptimizationResult:
    """Run Theorem 7's distributed quantum optimization for ``problem``.

    ``delta`` is the per-run failure probability target; the returned value
    is the maximum of ``f`` with probability at least ``1 - delta`` (up to
    the constants of the amplitude-amplification schedule).

    ``runner`` optionally parallelises the independent branch evaluations
    over a :class:`repro.runner.batch.BatchRunner` process pool when the
    problem declares ``supports_parallel_evaluation``; the result is
    identical to the serial run (see the module docstring).

    ``backend`` selects the quantum schedule simulator
    (:mod:`repro.quantum.backend`): ``"sampling"`` (the reference per-call
    simulation), ``"batched"`` (precomputed rotation statistics), a
    :class:`~repro.quantum.backend.ScheduleBackend` instance, or ``None``
    for the process-wide default.  Backends are proven byte-identical, so
    the choice affects wall-clock only.
    """
    rng = rng if rng is not None else random.Random(0)
    schedule_backend = resolve_schedule_backend(backend)

    # When the problem exposes the CONGEST network it simulates on, observe
    # every run it performs during the optimization through the engine's
    # metrics pipeline -- this reports how much simulation the optimization
    # really executed, separately from the modelled Theorem-7 cost.
    run_log = RunLogObserver()
    network = getattr(problem, "network", None)
    observed = network is not None and hasattr(network, "add_observer")
    if observed:
        network.add_observer(run_log)

    try:
        initialization_metrics = problem.initialization()
        amplitudes = problem.setup_amplitudes()
        if not amplitudes:
            raise ValueError("the search space must be non-empty")
        setup_metrics = problem.setup_cost()

        # Pre-compute the independent branch evaluations through the pool.
        # The schedule's first amplitude-amplification round touches every
        # branch anyway, so this is the same work, done cores-wide; the
        # accounting below is replayed lazily in query order so that every
        # reported quantity matches the serial execution exactly.
        precomputed: Optional[Dict[Item, tuple]] = None
        if (
            runner is not None
            and runner.jobs > 1
            and len(amplitudes) > 1  # map() falls back in-process for a
            # single task, which would run on the observed parent network
            # and then double-count when the replay below adds the deltas
            and getattr(problem, "supports_parallel_evaluation", False)
        ):
            items = list(amplitudes)
            precomputed = dict(
                zip(items, runner.map(_evaluate_branch, items, context=problem))
            )

        evaluation_cost: Dict[str, ExecutionMetrics] = {}
        value_cache: Dict[Item, float] = {}

        def value_of(item: Item) -> float:
            if item in value_cache:
                return value_cache[item]
            branch = None if precomputed is None else precomputed.get(item)
            if branch is not None:
                value, metrics, runs, rounds, messages = branch
                if observed:
                    run_log.runs += runs
                    run_log.rounds += rounds
                    run_log.messages += messages
            else:
                value, metrics = problem.evaluate(item)
            value_cache[item] = value
            current = evaluation_cost.get("max")
            if current is None or metrics.rounds > current.rounds:
                evaluation_cost["max"] = metrics
            return value

        eps = problem.optimum_mass_lower_bound()
        outcome: MaximumFindingResult = schedule_backend.run_maximum_finding(
            amplitudes,
            value_of=value_of,
            eps=eps,
            delta=delta,
            rng=rng,
            budget_constant=budget_constant,
        )
    finally:
        if observed:
            network.remove_observer(run_log)

    per_evaluation = evaluation_cost.get("max", ExecutionMetrics())
    cost_model = QuantumCostModel(
        initialization=initialization_metrics,
        setup=setup_metrics,
        evaluation=per_evaluation,
        internal_register_bits=problem.internal_register_bits(),
    )
    counts = QuantumResourceCount(
        setup_calls=outcome.setup_calls,
        evaluation_calls=outcome.evaluation_calls,
        measurements=outcome.measurements,
    )
    total_metrics = cost_model.total_metrics(counts)

    return DistributedOptimizationResult(
        best_item=outcome.best_item,
        best_value=outcome.best_value,
        counts=counts,
        metrics=total_metrics,
        initialization_rounds=initialization_metrics.rounds,
        setup_rounds_per_call=setup_metrics.rounds,
        evaluation_rounds_per_call=per_evaluation.rounds,
        distinct_evaluations=len(value_cache),
        simulated_runs=run_log.runs,
        simulated_rounds=run_log.rounds,
    )
