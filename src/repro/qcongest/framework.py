"""Distributed quantum optimization (Theorem 7).

This is the paper's general framework: a leader drives quantum maximum
finding whose Setup and Evaluation unitaries are implemented by distributed
procedures.  The framework

1. runs the problem's **Initialization** once (classically, on the CONGEST
   simulator) and records its round cost ``T0``;
2. measures the round cost of one **Setup** application and of one
   **Evaluation** application by running the corresponding distributed
   procedures;
3. simulates the quantum maximum-finding schedule *exactly* (via
   :func:`repro.quantum.maximum_finding.find_maximum`, which reproduces the
   amplitude-amplification measurement statistics), counting every Setup and
   Evaluation application;
4. converts the counts into total CONGEST rounds with the cost model of
   Theorem 7 (``T0 + #calls * T``) and reports per-node memory.

Concrete problems (exact diameter, Theorem 1; 3/2-approximation, Theorem 4)
implement the small :class:`DistributedSearchProblem` interface in
:mod:`repro.core`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.engine import RunLogObserver
from repro.quantum.cost_model import QuantumCostModel, QuantumResourceCount
from repro.quantum.maximum_finding import MaximumFindingResult, find_maximum

Item = Hashable


class DistributedSearchProblem:
    """Interface of a problem solvable by distributed quantum optimization.

    Concrete subclasses provide the four ingredients of Section 2.4:
    Initialization, the search space and Setup amplitudes, the Setup cost
    and the Evaluation procedure (value + cost).
    """

    def initialization(self) -> ExecutionMetrics:
        """Run the classical Initialization phase; return its metrics."""
        raise NotImplementedError

    def search_space(self) -> List[Item]:
        """The set ``X`` over which the optimization runs."""
        raise NotImplementedError

    def setup_amplitudes(self) -> Dict[Item, float]:
        """The amplitudes ``alpha_x`` produced by Setup (normalised)."""
        raise NotImplementedError

    def setup_cost(self) -> ExecutionMetrics:
        """Round cost of one application of Setup (or its inverse)."""
        raise NotImplementedError

    def evaluate(self, item: Item) -> Tuple[float, ExecutionMetrics]:
        """Evaluate ``f(item)`` distributively; return the value and cost."""
        raise NotImplementedError

    def optimum_mass_lower_bound(self) -> float:
        """A lower bound on ``P_opt`` (the ``eps`` of Corollary 1)."""
        raise NotImplementedError

    def internal_register_bits(self) -> int:
        """Size of the leader's internal register in (qu)bits."""
        raise NotImplementedError


@dataclass
class DistributedOptimizationResult:
    """Outcome of one distributed quantum optimization run."""

    best_item: Item
    best_value: float
    counts: QuantumResourceCount
    metrics: ExecutionMetrics
    initialization_rounds: int
    setup_rounds_per_call: int
    evaluation_rounds_per_call: int
    distinct_evaluations: int
    #: CONGEST executions actually simulated during the optimization (as
    #: opposed to the *modelled* rounds of ``metrics``), observed via the
    #: engine's metrics pipeline when the problem exposes its network.
    simulated_runs: int = 0
    simulated_rounds: int = 0

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds (Initialization + all Setup/Evaluation calls)."""
        return self.metrics.rounds


def run_distributed_quantum_optimization(
    problem: DistributedSearchProblem,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    budget_constant: float = 4.0,
) -> DistributedOptimizationResult:
    """Run Theorem 7's distributed quantum optimization for ``problem``.

    ``delta`` is the per-run failure probability target; the returned value
    is the maximum of ``f`` with probability at least ``1 - delta`` (up to
    the constants of the amplitude-amplification schedule).
    """
    rng = rng if rng is not None else random.Random(0)

    # When the problem exposes the CONGEST network it simulates on, observe
    # every run it performs during the optimization through the engine's
    # metrics pipeline -- this reports how much simulation the optimization
    # really executed, separately from the modelled Theorem-7 cost.
    run_log = RunLogObserver()
    network = getattr(problem, "network", None)
    observed = network is not None and hasattr(network, "add_observer")
    if observed:
        network.add_observer(run_log)

    try:
        initialization_metrics = problem.initialization()
        amplitudes = problem.setup_amplitudes()
        if not amplitudes:
            raise ValueError("the search space must be non-empty")
        setup_metrics = problem.setup_cost()

        evaluation_cost: Dict[str, ExecutionMetrics] = {}
        value_cache: Dict[Item, float] = {}

        def value_of(item: Item) -> float:
            if item in value_cache:
                return value_cache[item]
            value, metrics = problem.evaluate(item)
            value_cache[item] = value
            current = evaluation_cost.get("max")
            if current is None or metrics.rounds > current.rounds:
                evaluation_cost["max"] = metrics
            return value

        eps = problem.optimum_mass_lower_bound()
        outcome: MaximumFindingResult = find_maximum(
            amplitudes,
            value_of=value_of,
            eps=eps,
            delta=delta,
            rng=rng,
            budget_constant=budget_constant,
        )
    finally:
        if observed:
            network.remove_observer(run_log)

    per_evaluation = evaluation_cost.get("max", ExecutionMetrics())
    cost_model = QuantumCostModel(
        initialization=initialization_metrics,
        setup=setup_metrics,
        evaluation=per_evaluation,
        internal_register_bits=problem.internal_register_bits(),
    )
    counts = QuantumResourceCount(
        setup_calls=outcome.setup_calls,
        evaluation_calls=outcome.evaluation_calls,
        measurements=outcome.measurements,
    )
    total_metrics = cost_model.total_metrics(counts)

    return DistributedOptimizationResult(
        best_item=outcome.best_item,
        best_value=outcome.best_value,
        counts=counts,
        metrics=total_metrics,
        initialization_rounds=initialization_metrics.rounds,
        setup_rounds_per_call=setup_metrics.rounds,
        evaluation_rounds_per_call=per_evaluation.rounds,
        distinct_evaluations=len(value_cache),
        simulated_runs=run_log.runs,
        simulated_rounds=run_log.rounds,
    )
