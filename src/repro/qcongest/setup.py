"""The Setup procedure (Proposition 2): spreading the internal register.

Proposition 2: the leader prepares ``(1/sqrt(n)) sum_{u0} |u0>_leader`` and
broadcasts it along ``BFS(leader)`` using CNOT copies, producing

    ``(1/sqrt(n)) sum_{u0} |u0>_leader (tensor)_v |u0>_v``

in ``d = depth(BFS(leader))`` rounds and ``O(log n)`` memory per node.

In the branch-wise simulation the quantum content of Setup is trivial (in
branch ``u0`` every node ends up holding ``u0``); what needs to be measured
is its CONGEST *cost*.  :func:`run_setup_broadcast` runs the corresponding
classical broadcast on the simulator -- the quantum version sends exactly
the same number of messages of the same size, only carrying halves of CNOT
copies instead of classical bits -- and returns the metrics, which the
framework charges once per Setup application.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.algorithms.bfs import BFSTreeResult
from repro.algorithms.broadcast import run_tree_broadcast
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network


def run_setup_broadcast(
    network: Network, tree: BFSTreeResult, item: Hashable
) -> Tuple[ExecutionMetrics, dict]:
    """Broadcast ``item`` (a search-space label) along the given BFS tree.

    Returns the execution metrics of the broadcast and the per-node received
    values (all equal to ``item``), i.e. the classical content of
    ``|data(item)>``.
    """
    broadcast = run_tree_broadcast(network, tree, item)
    metrics = broadcast.metrics
    metrics.record_phase("setup_broadcast", metrics.rounds)
    return metrics, broadcast.values
