"""Pluggable metrics pipeline: observers of a CONGEST execution.

The execution engine (:mod:`repro.engine.engine`) no longer hard-codes its
accounting: every measurable event -- a message crossing an edge, a memory
sample, the end of a round or of a whole run -- is fanned out to a list of
:class:`MetricsObserver` instances.  The core accounting that the seed
simulator performed inline (rounds, messages, bits, bandwidth violations,
per-node memory) now lives in :class:`CoreMetricsObserver`; the per-message
traffic log that the Theorem-10 two-party reduction consumes lives in
:class:`TrafficLogObserver` and :class:`StitchedTrafficObserver`.

Observers are cheap to compose and are the seam where future concerns plug
in (per-edge congestion heat maps, latency histograms, live dashboards, ...)
without touching the engine's hot loop.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.graphs.graph import NodeId

#: One traffic-log entry: ``(round, sender, receiver, bits)``.
TrafficEntry = Tuple[int, NodeId, NodeId, int]


class MetricsObserver:
    """Base class for execution observers.

    All hooks default to no-ops so observers only override what they need.
    Hooks are called from the engine's hot loop; implementations should be
    O(1) per event.
    """

    def on_run_start(self, network: Any) -> None:
        """Called once before round 0 of a run."""

    def on_message(
        self,
        round_number: int,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        size_bits: int,
        violation: bool,
    ) -> None:
        """Called for every message accepted by the transport.

        ``violation`` is true when ``size_bits`` exceeds the bandwidth
        budget (in strict mode the transport raises immediately after the
        observers have seen the message).
        """

    def on_broadcast(
        self,
        round_number: int,
        sender: NodeId,
        targets: Sequence[NodeId],
        payload: Any,
        size_bits: int,
        violation: bool,
    ) -> None:
        """Called when the vector transport delivers one shared payload to
        ``targets`` in a single batch (a ``NodeAlgorithm.broadcast``).

        The default implementation replays the batch as per-target
        :meth:`on_message` calls in target order, so observers that only
        override ``on_message`` see byte-identical event streams under
        every engine; accounting observers override this with an O(1)
        batched update instead.
        """
        for target in targets:
            self.on_message(
                round_number, sender, target, payload, size_bits, violation
            )

    def on_memory_sample(self, node: NodeId, memory_bits: int) -> None:
        """Called with each non-``None`` ``memory_bits()`` sample."""

    def on_round_end(self, round_number: int) -> None:
        """Called after all nodes scheduled in ``round_number`` have run."""

    def on_run_end(self, metrics: ExecutionMetrics) -> None:
        """Called once when a run completes normally (not on error)."""

    # -- fault-layer events (only emitted by fault-aware runs) ----------
    def on_message_dropped(
        self, round_number: int, sender: NodeId, receiver: NodeId, reason: str
    ) -> None:
        """A sent message was discarded by the fault plan.

        ``reason`` is ``"loss"`` (random message loss), ``"churn"`` (the
        edge was down this round) or ``"crash"`` (the receiver is down at
        the arrival round).  The message was still *sent* -- it consumed
        bandwidth and was reported through :meth:`on_message` first.
        """

    def on_message_delayed(
        self,
        round_number: int,
        sender: NodeId,
        receiver: NodeId,
        arrival_round: int,
    ) -> None:
        """A sent message was delayed to arrive at ``arrival_round``
        (instead of ``round_number + 1``)."""

    def on_node_crashed(self, round_number: int, node: NodeId) -> None:
        """``node`` crashed at the top of ``round_number`` (fail-pause)."""

    def on_node_restarted(self, round_number: int, node: NodeId) -> None:
        """``node`` restarted at the top of ``round_number`` with its
        pre-crash state intact."""

    def on_edge_churned(
        self, round_number: int, u: NodeId, v: NodeId
    ) -> None:
        """The edge ``{u, v}`` is down for the duration of ``round_number``."""


class MetricsPipeline:
    """An ordered fan-out of observers.

    The engine drives a pipeline per run; the pipeline owns no accounting
    state of its own.
    """

    __slots__ = ("observers",)

    def __init__(self, observers) -> None:
        self.observers: List[MetricsObserver] = list(observers)

    def on_run_start(self, network: Any) -> None:
        for observer in self.observers:
            observer.on_run_start(network)

    def on_message(
        self,
        round_number: int,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        size_bits: int,
        violation: bool,
    ) -> None:
        for observer in self.observers:
            observer.on_message(
                round_number, sender, receiver, payload, size_bits, violation
            )

    def on_broadcast(
        self,
        round_number: int,
        sender: NodeId,
        targets: Sequence[NodeId],
        payload: Any,
        size_bits: int,
        violation: bool,
    ) -> None:
        for observer in self.observers:
            observer.on_broadcast(
                round_number, sender, targets, payload, size_bits, violation
            )

    def on_memory_sample(self, node: NodeId, memory_bits: int) -> None:
        for observer in self.observers:
            observer.on_memory_sample(node, memory_bits)

    def on_round_end(self, round_number: int) -> None:
        for observer in self.observers:
            observer.on_round_end(round_number)

    def on_run_end(self, metrics: ExecutionMetrics) -> None:
        for observer in self.observers:
            observer.on_run_end(metrics)

    def on_message_dropped(
        self, round_number: int, sender: NodeId, receiver: NodeId, reason: str
    ) -> None:
        for observer in self.observers:
            observer.on_message_dropped(round_number, sender, receiver, reason)

    def on_message_delayed(
        self,
        round_number: int,
        sender: NodeId,
        receiver: NodeId,
        arrival_round: int,
    ) -> None:
        for observer in self.observers:
            observer.on_message_delayed(
                round_number, sender, receiver, arrival_round
            )

    def on_node_crashed(self, round_number: int, node: NodeId) -> None:
        for observer in self.observers:
            observer.on_node_crashed(round_number, node)

    def on_node_restarted(self, round_number: int, node: NodeId) -> None:
        for observer in self.observers:
            observer.on_node_restarted(round_number, node)

    def on_edge_churned(self, round_number: int, u: NodeId, v: NodeId) -> None:
        for observer in self.observers:
            observer.on_edge_churned(round_number, u, v)


class CoreMetricsObserver(MetricsObserver):
    """The accounting the seed simulator performed inline.

    Collects messages, total bits, the largest single-edge-per-round
    message, bandwidth violations and the per-node memory high-water mark
    into an :class:`repro.congest.metrics.ExecutionMetrics`.  The engine
    stamps ``metrics.rounds`` itself when the run terminates.
    """

    def __init__(self, bandwidth_limit_bits: Optional[int]) -> None:
        self.metrics = ExecutionMetrics(bandwidth_limit_bits=bandwidth_limit_bits)

    def on_message(
        self, round_number, sender, receiver, payload, size_bits, violation
    ) -> None:
        metrics = self.metrics
        metrics.messages += 1
        metrics.total_bits += size_bits
        if size_bits > metrics.max_edge_bits_per_round:
            metrics.max_edge_bits_per_round = size_bits
        if violation:
            metrics.bandwidth_violations += 1

    def on_broadcast(
        self, round_number, sender, targets, payload, size_bits, violation
    ) -> None:
        # The O(1) batched form of ``on_message`` applied ``len(targets)``
        # times: every counter update is additive, so the batch lands on
        # exactly the totals the per-message replay would produce.
        metrics = self.metrics
        count = len(targets)
        metrics.messages += count
        metrics.total_bits += size_bits * count
        if size_bits > metrics.max_edge_bits_per_round:
            metrics.max_edge_bits_per_round = size_bits
        if violation:
            metrics.bandwidth_violations += count

    def on_memory_sample(self, node, memory_bits) -> None:
        if memory_bits > self.metrics.max_node_memory_bits:
            self.metrics.max_node_memory_bits = memory_bits


class FaultObserver(MetricsObserver):
    """Account fault-layer events into an :class:`ExecutionMetrics`.

    Attached by the engine's fault-aware run loop next to the
    :class:`CoreMetricsObserver` (sharing its metrics object), so faulty
    runs report their degradation -- dropped/delayed messages, crash and
    restart events, churned (edge, round) pairs -- alongside the ordinary
    cost counters.  Never attached under the null fault model.
    """

    def __init__(self, metrics: ExecutionMetrics) -> None:
        self.metrics = metrics

    def on_message_dropped(
        self, round_number, sender, receiver, reason
    ) -> None:
        self.metrics.dropped_messages += 1

    def on_message_delayed(
        self, round_number, sender, receiver, arrival_round
    ) -> None:
        self.metrics.delayed_messages += 1

    def on_node_crashed(self, round_number, node) -> None:
        self.metrics.node_crashes += 1

    def on_node_restarted(self, round_number, node) -> None:
        self.metrics.node_restarts += 1

    def on_edge_churned(self, round_number, u, v) -> None:
        self.metrics.churned_edge_rounds += 1


class TrafficLogObserver(MetricsObserver):
    """Record every message of one run as ``(round, sender, receiver, bits)``.

    This implements ``Network.run(record_traffic=True)``: the Theorem-10
    reduction uses the log to measure how many bits cross the cut of a
    gadget graph in each round.
    """

    def __init__(self) -> None:
        self.traffic: List[TrafficEntry] = []

    def on_message(
        self, round_number, sender, receiver, payload, size_bits, violation
    ) -> None:
        self.traffic.append((round_number, sender, receiver, size_bits))

    def on_broadcast(
        self, round_number, sender, targets, payload, size_bits, violation
    ) -> None:
        # Same entries in the same (target) order as the per-message
        # replay, appended in one ``extend``.
        self.traffic.extend(
            (round_number, sender, target, size_bits) for target in targets
        )


class StitchedTrafficObserver(MetricsObserver):
    """Record traffic across *several* runs with sequential round numbering.

    Multi-phase algorithms (leader election, then BFS, then convergecast,
    ...) issue one ``Network.run`` per phase, each restarting its round
    counter at 0.  Attached as a persistent network observer, this re-bases
    every phase so that phase ``i`` starts right after the last round of
    phase ``i - 1`` in which a message was sent -- exactly the flattening the
    two-party reduction of Theorem 10 needs to reconstruct a single
    transcript from a composed algorithm.
    """

    def __init__(self) -> None:
        self.traffic: List[TrafficEntry] = []
        self._offset = 0
        self._phase_last_round = -1

    def on_run_start(self, network) -> None:
        self._phase_last_round = -1

    def on_message(
        self, round_number, sender, receiver, payload, size_bits, violation
    ) -> None:
        self.traffic.append(
            (self._offset + round_number, sender, receiver, size_bits)
        )
        if round_number > self._phase_last_round:
            self._phase_last_round = round_number

    def on_broadcast(
        self, round_number, sender, targets, payload, size_bits, violation
    ) -> None:
        rebased = self._offset + round_number
        self.traffic.extend(
            (rebased, sender, target, size_bits) for target in targets
        )
        if round_number > self._phase_last_round:
            self._phase_last_round = round_number

    def on_run_end(self, metrics) -> None:
        self._offset += self._phase_last_round + 1
        self._phase_last_round = -1


class RunLogObserver(MetricsObserver):
    """Count how many simulator runs (and rounds) actually executed.

    The quantum framework (:mod:`repro.qcongest.framework`) distinguishes
    *modelled* rounds (Theorem 7's ``T0 + #calls * T`` accounting) from the
    CONGEST executions it really simulated; attaching this observer for the
    duration of an optimization reports the latter.
    """

    def __init__(self) -> None:
        self.runs = 0
        self.rounds = 0
        self.messages = 0

    def on_run_end(self, metrics) -> None:
        self.runs += 1
        self.rounds += metrics.rounds
        self.messages += metrics.messages
