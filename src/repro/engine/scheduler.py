"""Schedulers: which nodes run in which round.

The seed simulator woke **every** node **every** round.  For the BFS-wave
style algorithms at the heart of the paper (single- and multi-source BFS,
the Figure-2 Evaluation procedure) almost all nodes are idle in almost all
rounds -- a wavefront of O(1) nodes does the work -- so the dense policy
spends Theta(n * rounds) scheduler time where Theta(activations) suffices.

Three policies ship:

* :class:`DenseScheduler` -- the seed behaviour, bit-for-bit: every node
  runs every round, wake requests are no-ops (a node that wants to act at a
  given round can simply look at ``round_number``).
* :class:`SparseScheduler` -- event-driven: after round 0 (where every node
  runs, so initiators can start the algorithm) a node runs only when its
  inbox is non-empty or it explicitly asked to be woken via the
  :meth:`repro.congest.node.NodeAlgorithm.wake_next_round` /
  :meth:`~repro.congest.node.NodeAlgorithm.wake_at` API.  Idle nodes are
  never touched.
* :class:`VectorScheduler` -- dense semantics through the engine's
  array-indexed round loop (part of the ``numpy`` compute tier, see
  :mod:`repro.tier`): index-addressed inbox slots and batched broadcast
  delivery remove the per-node dict probes and per-message accounting
  calls that dominate message-heavy workloads where the sparse policy
  cannot help because almost every node is active anyway.

The sparse policy requires algorithms to be *idle-quiescent*: a node whose
``on_round`` is called with an empty inbox and no pending self-wake must
neither send messages nor change state.  All algorithms in this repository
satisfy the contract (the pipelined multi-source BFS and the scheduled
distance waves use self-wakes); an algorithm that deadlocks under the
sparse policy -- unfinished nodes but no messages in flight and no wakes --
fails fast with :class:`repro.congest.errors.RoundLimitExceededError`
instead of silently spinning to the round cap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.congest.errors import RoundLimitExceededError
from repro.graphs.graph import NodeId
from repro.graphs.indexed import IndexedGraph


class Scheduler:
    """Base class of the scheduling policies.

    A scheduler is owned by one engine and recycled across runs;
    :meth:`begin_run` resets its per-run state.
    """

    #: Registry name, also surfaced as ``Network.engine_name``.
    name: str = "abstract"

    #: Whether the engine should drain self-wake requests after each
    #: ``on_round`` call.  Dense scheduling ignores wakes, so the engine
    #: skips the drain entirely in its hot loop.
    uses_wakes: bool = False

    def begin_run(
        self,
        algorithms: Mapping[NodeId, Any],
        indexed: Optional[IndexedGraph] = None,
    ) -> None:
        """Reset per-run state; ``algorithms`` fixes the node universe.

        ``indexed`` is the compiled CSR view of the topology when the
        engine has one: schedulers prebind its frozen ``labels`` tuple
        and label->index map instead of rebuilding them from
        ``algorithms`` on every run.  The node universes are identical
        by construction (the engine builds ``algorithms`` from the same
        graph); ``indexed=None`` keeps the standalone behaviour for
        direct scheduler use.
        """
        raise NotImplementedError

    def all_nodes(self) -> Optional[Sequence[NodeId]]:
        """The exact sequence object :meth:`active_nodes` returns for an
        every-node round, or ``None`` if unknown.

        The engine compares the active sequence against this object *by
        identity* to skip the per-node ``algorithms[node]`` dict lookups
        on full rounds (every dense round, round 0 under sparse)."""
        return None

    def active_nodes(
        self, round_number: int, inboxes: Mapping[NodeId, Any]
    ) -> Sequence[NodeId]:
        """The nodes to run in ``round_number``, in a deterministic order.

        ``inboxes`` is the sparse inbox map: it contains exactly the nodes
        that received at least one message in the previous round.
        """
        raise NotImplementedError

    def request_wake(self, node: NodeId, round_number: int) -> None:
        """Schedule ``node`` to run in ``round_number`` (absolute)."""

    def has_scheduled_wakes(self) -> bool:
        """Whether any future self-wake is pending (termination input)."""
        return False

    def check_quiescent(self, round_number: int, unfinished: int) -> None:
        """Called when no messages are in flight, no wakes are scheduled and
        ``unfinished`` nodes have not finished.  Dense scheduling keeps
        spinning (a node may act on a later ``round_number``); sparse
        scheduling would never run another node, so it fails fast."""


class DenseScheduler(Scheduler):
    """The seed policy: every node runs every round."""

    name = "dense"
    uses_wakes = False

    def __init__(self) -> None:
        self._nodes: Sequence[NodeId] = []

    def begin_run(
        self,
        algorithms: Mapping[NodeId, Any],
        indexed: Optional[IndexedGraph] = None,
    ) -> None:
        # The compiled view's frozen labels tuple spares the O(n) copy.
        self._nodes = indexed.labels if indexed is not None else list(algorithms)

    def active_nodes(
        self, round_number: int, inboxes: Mapping[NodeId, Any]
    ) -> Sequence[NodeId]:
        return self._nodes

    def all_nodes(self) -> Optional[Sequence[NodeId]]:
        return self._nodes


class SparseScheduler(Scheduler):
    """Event-driven policy: only nodes with work to do run.

    A node is scheduled in round ``t > 0`` iff it received a message in
    round ``t - 1`` or a self-wake was requested for ``t``.  Round 0 runs
    every node (any node may be an initiator).  Scheduling is O(active)
    per round; the active set is ordered by the node order of the graph so
    that executions remain deterministic and match the dense policy.
    """

    name = "sparse"
    uses_wakes = True

    def __init__(self) -> None:
        self._nodes: Sequence[NodeId] = []
        self._order: Dict[NodeId, int] = {}
        self._wakes: Dict[int, Set[NodeId]] = {}

    def begin_run(
        self,
        algorithms: Mapping[NodeId, Any],
        indexed: Optional[IndexedGraph] = None,
    ) -> None:
        if indexed is not None:
            # Prebound CSR order: the frozen labels tuple and the
            # label->index map are shared with the view (no per-run
            # rebuild of either).
            self._nodes = indexed.labels
            self._order = indexed.index_of
        else:
            self._nodes = list(algorithms)
            self._order = {node: index for index, node in enumerate(self._nodes)}
        self._wakes = {}

    def active_nodes(
        self, round_number: int, inboxes: Mapping[NodeId, Any]
    ) -> Sequence[NodeId]:
        woken = self._wakes.pop(round_number, None)
        if round_number == 0:
            return self._nodes
        if not woken:
            if len(inboxes) <= 1:
                return list(inboxes)
            return sorted(inboxes, key=self._order.__getitem__)
        active = set(inboxes)
        active.update(woken)
        return sorted(active, key=self._order.__getitem__)

    def all_nodes(self) -> Optional[Sequence[NodeId]]:
        # Round 0 returns self._nodes verbatim, so the engine's identity
        # check gives the full-round fast path there too.
        return self._nodes

    def request_wake(self, node: NodeId, round_number: int) -> None:
        bucket = self._wakes.get(round_number)
        if bucket is None:
            bucket = self._wakes[round_number] = set()
        bucket.add(node)

    def has_scheduled_wakes(self) -> bool:
        return bool(self._wakes)

    def check_quiescent(self, round_number: int, unfinished: int) -> None:
        raise RoundLimitExceededError(
            f"round {round_number}: {unfinished} node(s) have not finished "
            "but no message is in flight and no self-wake is scheduled; "
            "under the sparse scheduler idle nodes are never re-run -- "
            "timer-driven algorithms must call wake_next_round()/wake_at()"
        )


class VectorScheduler(DenseScheduler):
    """Dense semantics through the engine's array-indexed round loop.

    Scheduling policy is identical to :class:`DenseScheduler` (every
    node runs every round, wakes are no-ops), but the ``vectorized``
    flag routes execution through the engine's vector round loop:
    node-index-addressed inbox slot arrays instead of label-keyed dicts,
    per-node state in flat arrays, and batched broadcast delivery
    through :meth:`repro.engine.transport.Transport.deliver_vector`
    (one payload measurement and one pipeline event per outbox that
    shares a payload object, the shape ``NodeAlgorithm.broadcast``
    produces).  Results, metrics, traffic logs and exceptions are
    byte-identical to the dense engine -- see
    ``tests/test_engine_differential.py``.

    The vector engine ships with the ``numpy`` compute tier
    (:mod:`repro.tier`), so constructing it without numpy installed
    fails with the tier's actionable :class:`ImportError`.
    """

    name = "vector"
    vectorized = True

    def __init__(self) -> None:
        from repro._numpy import require_numpy

        require_numpy("the 'vector' execution engine")
        super().__init__()


#: The available scheduling policies, by registry name.
SCHEDULERS = {
    DenseScheduler.name: DenseScheduler,
    SparseScheduler.name: SparseScheduler,
    VectorScheduler.name: VectorScheduler,
}


def validate_engine_name(name: str) -> str:
    """Raise ``ValueError`` unless ``name`` is a registered engine."""
    if name not in SCHEDULERS:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown engine {name!r} (available: {known})")
    return name


def make_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    return SCHEDULERS[validate_engine_name(name)]()
