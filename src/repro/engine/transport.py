"""Message transport: delivery, size measurement and bandwidth policy.

The transport owns everything that happens to a message between a node's
outbox and its neighbour's next-round inbox:

* the CONGEST contract check (only neighbours may be addressed, enforced
  with :class:`repro.congest.errors.ProtocolError`);
* size measurement via :func:`repro.congest.message.message_size_bits`,
  behind a memo cache -- the paper's algorithms send the same small tuples
  (``("bfs", d)``, ``("w", tag, delta)``, ...) over thousands of edges and
  rounds, so identical payloads are measured once;
* the bandwidth policy: in strict mode an oversized message raises
  :class:`repro.congest.errors.BandwidthExceededError`, otherwise the
  violation is only reported to the metrics pipeline.

The memo cache is keyed by ``(type, repr(payload))`` rather than by the
payload itself: supported payloads are built-in scalars and containers whose
``repr`` is faithful, while hashing the value directly would conflate
equal-but-differently-typed payloads (``2`` and ``2.0`` compare equal yet
cost 2 and 64 bits respectively).  Payloads whose ``repr`` fails are simply
measured directly.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.congest.errors import BandwidthExceededError, ProtocolError
from repro.congest.message import message_size_bits
from repro.engine.observers import MetricsPipeline
from repro.graphs.graph import Graph, NodeId

#: Default bound on the number of memoised payload sizes; beyond it new
#: payloads are measured without being cached (no eviction churn).
DEFAULT_SIZE_CACHE_LIMIT = 65536


class Transport:
    """Synchronous one-round-latency message delivery with bandwidth policy.

    Parameters
    ----------
    graph:
        The communication topology (for the neighbour check).
    bandwidth_bits:
        Per-edge per-round budget.  The engine refreshes this from the
        owning network at the start of every run, so post-construction
        mutations of ``Network.bandwidth_bits`` are honoured.
    strict_bandwidth:
        Whether oversized messages abort the run or are merely counted.
        Refreshed per run like ``bandwidth_bits``.
    size_cache_limit:
        Maximum number of distinct payloads whose measured size is memoised.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth_bits: int,
        strict_bandwidth: bool,
        size_cache_limit: int = DEFAULT_SIZE_CACHE_LIMIT,
    ) -> None:
        self.graph = graph
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = strict_bandwidth
        self.size_cache_limit = size_cache_limit
        self._size_cache: Dict[Tuple[type, str], int] = {}

    # ------------------------------------------------------------------
    def measure(self, payload: Any) -> int:
        """Size of ``payload`` in bits, memoised across the network's runs."""
        try:
            key = (payload.__class__, repr(payload))
        except Exception:
            return message_size_bits(payload)
        cache = self._size_cache
        size = cache.get(key)
        if size is None:
            size = message_size_bits(payload)
            if len(cache) < self.size_cache_limit:
                cache[key] = size
        return size

    @property
    def size_cache_entries(self) -> int:
        """Number of memoised payload sizes (introspection for benchmarks)."""
        return len(self._size_cache)

    # ------------------------------------------------------------------
    def deliver(
        self,
        round_number: int,
        sender: NodeId,
        outbox: Dict[NodeId, Any],
        next_inboxes: Dict[NodeId, Dict[NodeId, Any]],
        pipeline: MetricsPipeline,
    ) -> None:
        """Validate, measure, account and enqueue one node's outbox.

        ``next_inboxes`` is the sparse mapping of the *following* round's
        inboxes: only nodes that actually receive something get an entry.
        """
        graph = self.graph
        budget = self.bandwidth_bits
        for target, payload in outbox.items():
            if not graph.has_edge(sender, target):
                raise ProtocolError(
                    f"node {sender!r} tried to send to non-neighbour {target!r}"
                )
            size = self.measure(payload)
            violation = size > budget
            pipeline.on_message(round_number, sender, target, payload, size, violation)
            if violation and self.strict_bandwidth:
                raise BandwidthExceededError(
                    f"round {round_number}: node {sender!r} sent "
                    f"{size} bits to {target!r} "
                    f"(budget {budget} bits)"
                )
            inbox = next_inboxes.get(target)
            if inbox is None:
                inbox = next_inboxes[target] = {}
            inbox[sender] = payload
