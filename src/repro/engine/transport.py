"""Message transport: delivery, size measurement and bandwidth policy.

The transport owns everything that happens to a message between a node's
outbox and its neighbour's next-round inbox:

* the CONGEST contract check (only neighbours may be addressed, enforced
  with :class:`repro.congest.errors.ProtocolError`) -- the per-node
  neighbour frozensets are prebound from the graph's compiled CSR view
  (:meth:`repro.graphs.indexed.IndexedGraph.neighbor_sets`), so the hot
  loop performs one frozenset-membership test per message instead of a
  ``has_edge`` call.  The engine refreshes the binding at the start of
  every run via :meth:`Transport.bind_topology`; the graph's version
  counter makes the refresh O(1) when the topology is unchanged and
  rebuilds it when the graph was mutated between runs;
* size measurement via :func:`repro.congest.message.message_size_bits`,
  behind a memo cache -- the paper's algorithms send the same small tuples
  (``("bfs", d)``, ``("w", tag, delta)``, ...) over thousands of edges and
  rounds, so identical payloads are measured once;
* the bandwidth policy: in strict mode an oversized message raises
  :class:`repro.congest.errors.BandwidthExceededError`, otherwise the
  violation is only reported to the metrics pipeline.

Memo cache.  Two tiers, tried hash-first:

* the **value tier** keys scalars and flat tuples of scalars by the payload
  itself -- no ``repr`` string is built on the hot path.  Because Python's
  ``==``/``hash`` conflate equal numerics of different types (``2``,
  ``2.0`` and ``True`` collide, yet cost 2, 64 and 1 bits), each entry
  stores a *type signature* (the element classes) that is verified with
  identity checks on every hit; a signature mismatch falls through to a
  fresh measurement, so the tier is exact by construction;
* the **repr tier** is the original ``(type, repr(payload))`` key, used for
  everything else: nested containers, unhashable payloads (lists, dicts,
  sets) and exotic types.  Payloads whose ``repr`` fails are measured
  directly without caching.

Both tiers share one entry budget (``size_cache_limit``); beyond it new
payloads are measured without being cached (no eviction churn).

Cache effectiveness is reported through the metrics pipeline without
touching the hit path: ``measure`` counts only its (rare) misses and
overflows, and the engine derives per-run hits as ``messages - misses``
when stamping ``ExecutionMetrics`` -- every delivered message performs
exactly one measurement, so the identity is exact for leaf runs (and
clamped for re-entrant nested runs, whose misses land in the outer run's
delta while their messages do not).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.congest.errors import BandwidthExceededError, ProtocolError
from repro.congest.message import message_size_bits
from repro.engine.observers import MetricsPipeline
from repro.graphs.graph import Graph, NodeId
from repro.graphs.indexed import IndexedGraph

#: Default bound on the number of memoised payload sizes; beyond it new
#: payloads are measured without being cached (no eviction churn).
DEFAULT_SIZE_CACHE_LIMIT = 65536

#: Payload classes eligible for the value tier.  Scalars of these classes
#: (and flat tuples thereof) are fully disambiguated by their class
#: signature: equal values of the same class always measure the same size.
_SCALAR_CLASSES = frozenset((int, bool, float, str, type(None)))


def _value_signature(payload: Any):
    """The type signature for the value tier, or ``None`` if ineligible.

    Scalars sign as their class; flat tuples of scalars sign as the tuple
    of their element classes.  Nested containers are ineligible (their
    signature would not see inside, so ``(("a", 2),)`` and ``(("a", 2.0),)``
    could conflate) and fall back to the repr tier.
    """
    cls = payload.__class__
    if cls is tuple:
        signature = []
        append = signature.append
        for item in payload:
            item_cls = item.__class__
            if item_cls not in _SCALAR_CLASSES:
                return None
            append(item_cls)
        return tuple(signature)
    if cls in _SCALAR_CLASSES:
        return cls
    return None


class Transport:
    """Synchronous one-round-latency message delivery with bandwidth policy.

    Parameters
    ----------
    graph:
        The communication topology (for the neighbour check).
    bandwidth_bits:
        Per-edge per-round budget.  The engine refreshes this from the
        owning network at the start of every run, so post-construction
        mutations of ``Network.bandwidth_bits`` are honoured.
    strict_bandwidth:
        Whether oversized messages abort the run or are merely counted.
        Refreshed per run like ``bandwidth_bits``.
    size_cache_limit:
        Maximum number of distinct payloads whose measured size is memoised
        (shared by both cache tiers).
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth_bits: int,
        strict_bandwidth: bool,
        size_cache_limit: int = DEFAULT_SIZE_CACHE_LIMIT,
    ) -> None:
        self.graph = graph
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = strict_bandwidth
        self.size_cache_limit = size_cache_limit
        #: Value tier: payload -> (type signature, size).
        self._value_cache: Dict[Any, Tuple[Any, int]] = {}
        #: Repr tier: (type, repr) -> size.
        self._size_cache: Dict[Tuple[type, str], int] = {}
        #: Per-node neighbour frozensets, prebound from the compiled CSR
        #: view (one lookup per outbox, one membership test per message).
        #: The engine refreshes the binding per run, so graph mutations
        #: between runs are honoured.
        self._indexed: Optional[IndexedGraph] = None
        self._neighbor_sets: Dict[NodeId, Any] = {}
        self._index_of: Dict[NodeId, int] = {}
        self.bind_topology(graph.compile())
        # Cache-effectiveness counters, cumulative across the network's
        # runs; the engine stamps per-run deltas into the run's metrics.
        # Only misses and overflows are counted (they are rare -- one per
        # distinct payload); hits are derived from the message count so
        # the cache-hit path stays increment-free.
        self.cache_misses = 0
        self.cache_overflows = 0

    # ------------------------------------------------------------------
    def bind_topology(self, indexed: IndexedGraph) -> None:
        """(Re)bind the per-node neighbour sets from a compiled view.

        Called by the engine at the start of every run with
        ``graph.compile()``: on an unmutated graph the compiled view is
        the same cached object and the rebind is a no-op identity check;
        after a mutation a fresh view arrives and the frozensets are
        rebuilt (and cached on the view, shared with other transports).
        """
        if indexed is not self._indexed:
            self._indexed = indexed
            self._neighbor_sets = indexed.neighbor_sets()
            self._index_of = indexed.index_of

    def measure(self, payload: Any) -> int:
        """Size of ``payload`` in bits, memoised across the network's runs."""
        # Value tier: hash the payload itself -- no repr on the hot path.
        value_cache = self._value_cache
        try:
            hit = value_cache.get(payload)
        except TypeError:
            hashable = False
        else:
            hashable = True
            if hit is not None:
                signature, size = hit
                cls = payload.__class__
                if cls is not tuple:
                    if cls is signature:
                        return size
                elif signature.__class__ is tuple and tuple(map(type, payload)) == signature:
                    return size
                # Signature mismatch: an equal-but-differently-typed
                # payload (e.g. ``(2,)`` probing an entry for ``(2.0,)``).
                # Fall through, re-measure and retake the slot.
        if hashable:
            signature = _value_signature(payload)
            if signature is not None:
                size = message_size_bits(payload)
                self.cache_misses += 1
                if (
                    hit is not None  # overwriting an existing slot
                    or len(value_cache) + len(self._size_cache)
                    < self.size_cache_limit
                ):
                    value_cache[payload] = (signature, size)
                else:
                    self.cache_overflows += 1
                return size

        # Repr tier: nested containers, unhashable and exotic payloads.
        try:
            key = (payload.__class__, repr(payload))
        except Exception:
            self.cache_misses += 1
            return message_size_bits(payload)
        cache = self._size_cache
        size = cache.get(key)
        if size is None:
            size = message_size_bits(payload)
            self.cache_misses += 1
            if len(cache) + len(self._value_cache) < self.size_cache_limit:
                cache[key] = size
            else:
                self.cache_overflows += 1
        return size

    @property
    def size_cache_entries(self) -> int:
        """Number of memoised payload sizes (introspection for benchmarks)."""
        return len(self._value_cache) + len(self._size_cache)

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative cache-effectiveness counters (for reports).

        Hits are not counted here (the hit path is increment-free); per-run
        hit counts are derived by the engine and reported on
        ``ExecutionMetrics.size_cache_hits``.
        """
        return {
            "misses": self.cache_misses,
            "overflows": self.cache_overflows,
            "entries": self.size_cache_entries,
        }

    # ------------------------------------------------------------------
    def deliver(
        self,
        round_number: int,
        sender: NodeId,
        outbox: Dict[NodeId, Any],
        next_inboxes: Dict[NodeId, Dict[NodeId, Any]],
        pipeline: MetricsPipeline,
        inbox_pool: Optional[List[Dict[NodeId, Any]]] = None,
    ) -> None:
        """Validate, measure, account and enqueue one node's outbox.

        ``next_inboxes`` is the sparse mapping of the *following* round's
        inboxes: only nodes that actually receive something get an entry.
        ``inbox_pool`` is an optional free list of empty dicts the engine
        recycles across rounds; newly needed inboxes are taken from it
        before being allocated.
        """
        neighbors = self._neighbor_sets.get(sender)
        budget = self.bandwidth_bits
        measure = self.measure
        on_message = pipeline.on_message
        next_inboxes_get = next_inboxes.get
        for target, payload in outbox.items():
            if neighbors is None or target not in neighbors:
                raise ProtocolError(
                    f"node {sender!r} tried to send to non-neighbour {target!r}"
                )
            size = measure(payload)
            violation = size > budget
            on_message(round_number, sender, target, payload, size, violation)
            if violation and self.strict_bandwidth:
                raise BandwidthExceededError(
                    f"round {round_number}: node {sender!r} sent "
                    f"{size} bits to {target!r} "
                    f"(budget {budget} bits)"
                )
            inbox = next_inboxes_get(target)
            if inbox is None:
                if inbox_pool:
                    inbox = inbox_pool.pop()
                else:
                    inbox = {}
                next_inboxes[target] = inbox
            inbox[sender] = payload

    # ------------------------------------------------------------------
    def deliver_faulty(
        self,
        round_number: int,
        sender: NodeId,
        outbox: Dict[NodeId, Any],
        next_inboxes: Dict[NodeId, Dict[NodeId, Any]],
        pipeline: MetricsPipeline,
        inbox_pool: Optional[List[Dict[NodeId, Any]]],
        plan,
        pending: Dict[int, List[Tuple[NodeId, NodeId, Any]]],
    ) -> None:
        """:meth:`deliver` with the fault plan consulted per message.

        The clean prefix is identical to :meth:`deliver` -- neighbour
        contract, measurement, :meth:`MetricsPipeline.on_message`, strict
        bandwidth -- because a faulty network does not change what a node
        *sends*: every message consumes bandwidth and appears in traffic
        logs whether or not it arrives.  After accounting, the plan
        decides the fate, checked in physical order: a churned (down)
        edge carries nothing; then random loss; then the arrival-time
        crash check (a delayed message arriving while its receiver is
        down is lost too); then delay, which parks the message in
        ``pending`` (keyed by absolute arrival round -- the engine merges
        it into the inboxes of that round) instead of ``next_inboxes``.
        """
        neighbors = self._neighbor_sets.get(sender)
        budget = self.bandwidth_bits
        measure = self.measure
        on_message = pipeline.on_message
        next_inboxes_get = next_inboxes.get
        edge_down = plan.edge_down
        message_fate = plan.message_fate
        node_down = plan.node_down
        for target, payload in outbox.items():
            if neighbors is None or target not in neighbors:
                raise ProtocolError(
                    f"node {sender!r} tried to send to non-neighbour {target!r}"
                )
            size = measure(payload)
            violation = size > budget
            on_message(round_number, sender, target, payload, size, violation)
            if violation and self.strict_bandwidth:
                raise BandwidthExceededError(
                    f"round {round_number}: node {sender!r} sent "
                    f"{size} bits to {target!r} "
                    f"(budget {budget} bits)"
                )
            if edge_down(round_number, sender, target):
                pipeline.on_message_dropped(round_number, sender, target, "churn")
                continue
            fate = message_fate(round_number, sender, target)
            if fate < 0:
                pipeline.on_message_dropped(round_number, sender, target, "loss")
                continue
            arrival = round_number + 1 + fate
            if node_down(arrival, target):
                pipeline.on_message_dropped(round_number, sender, target, "crash")
                continue
            if fate:
                pipeline.on_message_delayed(round_number, sender, target, arrival)
                bucket = pending.get(arrival)
                if bucket is None:
                    bucket = pending[arrival] = []
                bucket.append((sender, target, payload))
                continue
            inbox = next_inboxes_get(target)
            if inbox is None:
                if inbox_pool:
                    inbox = inbox_pool.pop()
                else:
                    inbox = {}
                next_inboxes[target] = inbox
            inbox[sender] = payload

    # ------------------------------------------------------------------
    def deliver_vector(
        self,
        round_number: int,
        sender: NodeId,
        outbox: Dict[NodeId, Any],
        next_slots: List[Optional[Dict[NodeId, Any]]],
        touched: List[int],
        pipeline: MetricsPipeline,
        inbox_pool: List[Dict[NodeId, Any]],
    ) -> None:
        """Index-addressed delivery with a batched broadcast fast path.

        The vector engine's counterpart of :meth:`deliver`:
        ``next_slots`` is a node-index-addressed inbox array (``None`` =
        no messages yet) and ``touched`` records which indices gained an
        inbox this round.  Observable behaviour -- metrics, traffic
        entries and their order, exceptions -- is byte-identical to
        :meth:`deliver`.

        Fast path: ``NodeAlgorithm.broadcast`` reuses *one* payload
        object for every neighbour, so an outbox whose payloads are all
        the same object (by identity) and whose targets are all valid
        neighbours is measured **once** and reported to the pipeline as
        a single :meth:`MetricsPipeline.on_broadcast` batch.  Outboxes
        with per-target payloads, a non-neighbour target or a strict
        bandwidth overrun take the exact per-message path below (nothing
        has been observed at that point, so the replay starts clean).
        """
        if not outbox:
            return
        neighbors = self._neighbor_sets.get(sender)
        budget = self.bandwidth_bits
        index_of = self._index_of
        shared = None
        if neighbors is not None:
            iterator = iter(outbox.values())
            shared = next(iterator)
            for payload in iterator:
                if payload is not shared:
                    shared = None
                    break
        if shared is not None:
            valid = True
            for target in outbox:
                if target not in neighbors:
                    valid = False
                    break
            if valid:
                size = self.measure(shared)
                violation = size > budget
                if not (violation and self.strict_bandwidth):
                    targets = list(outbox)
                    pipeline.on_broadcast(
                        round_number, sender, targets, shared, size, violation
                    )
                    for target in targets:
                        index = index_of[target]
                        inbox = next_slots[index]
                        if inbox is None:
                            inbox = inbox_pool.pop() if inbox_pool else {}
                            next_slots[index] = inbox
                            touched.append(index)
                        inbox[sender] = shared
                    return

        # Exact per-message path: same event order and exceptions as
        # :meth:`deliver`, writing into index slots instead of a dict.
        measure = self.measure
        on_message = pipeline.on_message
        for target, payload in outbox.items():
            if neighbors is None or target not in neighbors:
                raise ProtocolError(
                    f"node {sender!r} tried to send to non-neighbour {target!r}"
                )
            size = measure(payload)
            violation = size > budget
            on_message(round_number, sender, target, payload, size, violation)
            if violation and self.strict_bandwidth:
                raise BandwidthExceededError(
                    f"round {round_number}: node {sender!r} sent "
                    f"{size} bits to {target!r} "
                    f"(budget {budget} bits)"
                )
            index = index_of[target]
            inbox = next_slots[index]
            if inbox is None:
                inbox = inbox_pool.pop() if inbox_pool else {}
                next_slots[index] = inbox
                touched.append(index)
            inbox[sender] = payload
