"""The execution engine: scheduler + transport + metrics pipeline.

:class:`ExecutionEngine` is the round loop that used to live inline in
``Network.run``, decomposed into three composable components:

* a :class:`repro.engine.scheduler.Scheduler` decides *which* nodes run in
  each round (dense = all, sparse = only nodes with messages or self-wakes);
* a :class:`repro.engine.transport.Transport` moves messages -- neighbour
  validation, memoised size measurement, bandwidth policy, delivery;
* a :class:`repro.engine.observers.MetricsPipeline` receives every
  measurable event (core accounting, traffic logs, custom observers).

``Network`` keeps its public ``run`` signature and delegates here; new
execution policies are additional schedulers/transports, not rewrites of
the loop.  Faulty links and dynamic topologies are in: a network built
with a non-null :class:`repro.faults.FaultModel` routes through
:meth:`ExecutionEngine._run_loop_faulty`, which layers message
loss/delay, fail-pause crash/restart and per-round edge churn over the
same scheduler/transport structure (the null model keeps the clean
loops, byte-identical to the pre-fault engine).

Internally the engine represents inboxes *sparsely*: the inbox mapping of a
round contains exactly the nodes that received at least one message, so the
per-round cost is O(active + messages) rather than O(n) when paired with
the sparse scheduler.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.congest.errors import RoundLimitExceededError
from repro.congest.node import Inbox, NodeAlgorithm
from repro.engine.observers import (
    CoreMetricsObserver,
    FaultObserver,
    MetricsObserver,
    MetricsPipeline,
    TrafficLogObserver,
)
from repro.engine.scheduler import (
    Scheduler,
    make_scheduler,
    validate_engine_name,
)
from repro.engine.transport import Transport
from repro.graphs.graph import NodeId

#: The engine used when neither the ``Network`` constructor nor the caller
#: picks one explicitly.  Toggled process-wide by :func:`set_default_engine`
#: (the CLI ``--engine`` flag and the benchmark ``--engine`` option use it).
_DEFAULT_ENGINE = "dense"


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous default."""
    global _DEFAULT_ENGINE
    validate_engine_name(name)
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    return previous


def get_default_engine() -> str:
    """The current process-wide default engine name."""
    return _DEFAULT_ENGINE


def resolve_engine_name(name: Optional[str]) -> str:
    """Map ``None`` to the process default and validate the name."""
    if name is None:
        return _DEFAULT_ENGINE
    return validate_engine_name(name)


class ExecutionEngine:
    """Drives per-node state machines in synchronous rounds.

    Parameters
    ----------
    network:
        The owning :class:`repro.congest.network.Network` (supplies the
        topology, bandwidth configuration and per-node RNGs to factories).
    scheduler:
        The scheduling policy.
    transport:
        Message delivery; built from the network's configuration when not
        given.  The transport's payload-size memo cache persists across the
        runs of one network.
    observers:
        Persistent extra observers notified on every run of this engine
        (in addition to the per-run core accounting / traffic observers).
    """

    def __init__(
        self,
        network: Any,
        scheduler: Scheduler,
        transport: Optional[Transport] = None,
        observers: Sequence[MetricsObserver] = (),
    ) -> None:
        self.network = network
        self.scheduler = scheduler
        if transport is None:
            transport = Transport(
                network.graph, network.bandwidth_bits, network.strict_bandwidth
            )
        self.transport = transport
        self.observers: list = list(observers)
        self._run_depth = 0
        # Per-engine counter of fault-aware runs: each run of a faulty
        # network salts its fault stream with this index, so multi-phase
        # algorithms (one ``run`` per phase) draw fresh, reproducible
        # fault patterns per phase instead of replaying round-0 fates.
        self._fault_runs = 0

    @property
    def name(self) -> str:
        """The registry name of the scheduling policy."""
        return self.scheduler.name

    # ------------------------------------------------------------------
    def run(
        self,
        factory: Callable[[NodeId, Any], NodeAlgorithm],
        max_rounds: Optional[int] = None,
        exact_rounds: Optional[int] = None,
        record_traffic: bool = False,
    ):
        """Run one distributed algorithm to completion.

        Semantics match the seed ``Network.run`` exactly under the dense
        scheduler; see :meth:`repro.congest.network.Network.run` for the
        parameter documentation.  Re-entrant: a nested ``run`` on the same
        network (e.g. a factory or callback simulating a sub-protocol) gets
        its own scheduler instance so the outer run's state survives.
        """
        from repro.congest.network import ExecutionResult

        network = self.network
        if max_rounds is None:
            max_rounds = network.default_max_rounds()

        algorithms: Dict[NodeId, NodeAlgorithm] = {
            node: factory(node, network) for node in network.graph.nodes()
        }

        if self._run_depth == 0:
            scheduler = self.scheduler
        else:
            scheduler = make_scheduler(self.scheduler.name)
        # The fault model only reroutes execution when it injects
        # something: the null model takes the exact pre-fault code paths,
        # which is what keeps it byte-identical to the fault-free
        # simulator (values, metrics, traffic logs, error messages).
        fault_model = getattr(network, "fault_model", None)
        if fault_model is not None and fault_model.is_null:
            fault_model = None
        self._run_depth += 1
        try:
            if fault_model is not None:
                run_index = self._fault_runs
                self._fault_runs += 1
                return self._run_loop_faulty(
                    network, algorithms, scheduler, ExecutionResult,
                    max_rounds, exact_rounds, record_traffic,
                    fault_model, run_index,
                )
            run_loop = (
                self._run_loop_vector
                if getattr(scheduler, "vectorized", False)
                else self._run_loop
            )
            return run_loop(
                network, algorithms, scheduler, ExecutionResult,
                max_rounds, exact_rounds, record_traffic,
            )
        finally:
            self._run_depth -= 1

    def _run_loop(
        self,
        network,
        algorithms: Dict[NodeId, NodeAlgorithm],
        scheduler: Scheduler,
        result_type,
        max_rounds: int,
        exact_rounds: Optional[int],
        record_traffic: bool,
    ):

        core = CoreMetricsObserver(bandwidth_limit_bits=network.bandwidth_bits)
        traffic_observer = TrafficLogObserver() if record_traffic else None
        observers = [core]
        if traffic_observer is not None:
            observers.append(traffic_observer)
        if self._run_depth == 1:
            # Persistent observers see only top-level runs: interleaving a
            # nested run's events would corrupt cross-run accounting such as
            # the stitched traffic transcript's sequential round re-basing.
            observers.extend(self.observers)
        pipeline = MetricsPipeline(observers)

        # The bandwidth policy is re-read from the network on every run so
        # that post-construction mutations of ``bandwidth_bits`` /
        # ``strict_bandwidth`` are honoured, as in the pre-engine simulator.
        # The topology is re-compiled the same way: ``compile()`` returns
        # the cached CSR view unless the graph was mutated since the last
        # run, in which case transport and scheduler rebind fresh state.
        transport = self.transport
        transport.bandwidth_bits = network.bandwidth_bits
        transport.strict_bandwidth = network.strict_bandwidth
        indexed = network.graph.compile()
        transport.bind_topology(indexed)

        cache_misses_before = transport.cache_misses
        cache_overflows_before = transport.cache_overflows

        scheduler.begin_run(algorithms, indexed)
        uses_wakes = scheduler.uses_wakes

        finished_state: Dict[NodeId, bool] = {}
        unfinished = 0
        for node, algorithm in algorithms.items():
            finished = algorithm.finished
            finished_state[node] = finished
            if not finished:
                unfinished += 1
            # Wakes requested during construction (e.g. a wave source that
            # knows its start round up-front).
            requests = algorithm.consume_wake_requests()
            if uses_wakes and requests:
                for request in requests:
                    scheduler.request_wake(
                        node, 0 if request is None else max(0, request)
                    )

        pipeline.on_run_start(network)

        # Hot-loop bindings: the attribute lookups below run O(active)
        # times per round, so they are hoisted out of the loop.  Consumed
        # inbox dicts are recycled through ``inbox_pool`` instead of being
        # reallocated every round; an inbox is therefore only valid for the
        # duration of the ``on_round`` call it is passed to (see
        # :class:`repro.congest.node.NodeAlgorithm`).
        deliver = transport.deliver
        on_memory_sample = pipeline.on_memory_sample
        on_round_end = pipeline.on_round_end
        active_nodes = scheduler.active_nodes
        request_wake = scheduler.request_wake
        has_scheduled_wakes = scheduler.has_scheduled_wakes
        inbox_pool: list = []
        # Full-round fast path: when the scheduler hands back its
        # every-node sequence (identity check), iterate the prezipped
        # (node, algorithm) pairs instead of one dict lookup per node --
        # this removes O(n) hash probes per dense round.
        full_sequence = scheduler.all_nodes()
        algorithm_pairs = list(algorithms.items())

        inboxes: Dict[NodeId, Inbox] = {}
        round_number = 0
        while True:
            if exact_rounds is not None and round_number >= exact_rounds:
                break
            if exact_rounds is None and round_number > 0:
                pending_wakes = has_scheduled_wakes()
                if not inboxes and not pending_wakes:
                    if unfinished == 0:
                        break
                    scheduler.check_quiescent(round_number, unfinished)
            if round_number >= max_rounds:
                raise RoundLimitExceededError.for_run(
                    max_rounds, round_number, core.metrics.messages
                )

            active = active_nodes(round_number, inboxes)
            next_inboxes: Dict[NodeId, Inbox] = {}
            any_message = False
            inboxes_get = inboxes.get
            if active is full_sequence:
                items = algorithm_pairs
            else:
                items = [(node, algorithms[node]) for node in active]
            for node, algorithm in items:
                inbox = inboxes_get(node)
                if inbox is None:
                    inbox = inbox_pool.pop() if inbox_pool else {}
                outbox = algorithm.on_round(round_number, inbox)
                if outbox:
                    any_message = True
                    deliver(
                        round_number, node, outbox, next_inboxes, pipeline,
                        inbox_pool,
                    )
                # Recycle the consumed inbox (after delivery, in case the
                # algorithm returned its inbox as the outbox).  Contract
                # (see NodeAlgorithm.on_round): the inbox is engine-owned
                # and must not be retained or sent as a payload.
                if inbox:
                    inbox.clear()
                inbox_pool.append(inbox)
                memory = algorithm.memory_bits()
                if memory is not None:
                    on_memory_sample(node, memory)
                finished = algorithm.finished
                if finished != finished_state[node]:
                    finished_state[node] = finished
                    unfinished += -1 if finished else 1
                # Drain wake requests on every engine so they cannot pile up
                # across the run; only wake-aware schedulers act on them.
                if getattr(algorithm, "_wake_requests", None):
                    requests = algorithm.consume_wake_requests()
                    if uses_wakes:
                        for request in requests:
                            request_wake(
                                node,
                                round_number + 1
                                if request is None
                                else max(request, round_number + 1),
                            )
            on_round_end(round_number)

            round_number += 1
            inboxes = next_inboxes

            if exact_rounds is None and not any_message:
                if unfinished == 0 and not has_scheduled_wakes():
                    break

        metrics = core.metrics
        metrics.rounds = round_number
        # Each delivered message performed exactly one measurement, so the
        # cache hits of this run are the messages that were not misses
        # (clamped: a nested run's misses land in this delta while its
        # messages do not).
        misses = transport.cache_misses - cache_misses_before
        metrics.size_cache_misses = misses
        metrics.size_cache_hits = max(0, metrics.messages - misses)
        metrics.size_cache_overflows = (
            transport.cache_overflows - cache_overflows_before
        )
        pipeline.on_run_end(metrics)
        results = {node: algorithm.result() for node, algorithm in algorithms.items()}
        return result_type(
            results=results,
            metrics=metrics,
            traffic=traffic_observer.traffic if traffic_observer is not None else None,
        )


    def _run_loop_vector(
        self,
        network,
        algorithms: Dict[NodeId, NodeAlgorithm],
        scheduler: Scheduler,
        result_type,
        max_rounds: int,
        exact_rounds: Optional[int],
        record_traffic: bool,
    ):
        """The array-indexed round loop of the ``vector`` engine.

        Dense semantics (every node runs every round), restructured
        around node *indices* instead of labels: per-node state lives in
        flat lists addressed by CSR index -- inbox slot arrays that the
        transport's :meth:`~repro.engine.transport.Transport.deliver_vector`
        fills in place, prebound wake-request lists (no per-activation
        ``getattr``), finished flags (no dict probes) -- and an outbox
        that shares one payload object across its targets (the
        ``broadcast`` shape) is measured and observed once per batch.
        Results, metrics and event streams are byte-identical to
        :meth:`_run_loop` under the dense scheduler; the differential
        tests hold all three engines equal.
        """
        core = CoreMetricsObserver(bandwidth_limit_bits=network.bandwidth_bits)
        traffic_observer = TrafficLogObserver() if record_traffic else None
        observers = [core]
        if traffic_observer is not None:
            observers.append(traffic_observer)
        if self._run_depth == 1:
            observers.extend(self.observers)
        pipeline = MetricsPipeline(observers)

        transport = self.transport
        transport.bandwidth_bits = network.bandwidth_bits
        transport.strict_bandwidth = network.strict_bandwidth
        indexed = network.graph.compile()
        transport.bind_topology(indexed)

        cache_misses_before = transport.cache_misses
        cache_overflows_before = transport.cache_overflows

        scheduler.begin_run(algorithms, indexed)

        labels = indexed.labels
        n = len(labels)
        algos = [algorithms[label] for label in labels]

        finished_flags = []
        unfinished = 0
        for algorithm in algos:
            finished = algorithm.finished
            finished_flags.append(finished)
            if not finished:
                unfinished += 1
            # Wakes requested during construction are drained exactly as
            # in the dense loop; the vector policy ignores them.
            algorithm.consume_wake_requests()
        # Prebound wake lists -- bound *after* the initial drain, which
        # replaces each algorithm's list object.  The loop clears these
        # in place (``del wakes[:]``) so the bindings stay valid, which
        # removes the per-activation ``getattr`` of the dense loop.
        wake_lists = [
            getattr(algorithm, "_wake_requests", None) for algorithm in algos
        ]

        pipeline.on_run_start(network)

        deliver_vector = transport.deliver_vector
        # Single-observer fast path: the common un-instrumented run has
        # exactly the core observer, so events skip the pipeline fan-out
        # loop (same calls, one layer fewer).
        if len(observers) == 1:
            on_memory_sample = core.on_memory_sample
        else:
            on_memory_sample = pipeline.on_memory_sample
        on_round_end = pipeline.on_round_end
        inbox_pool: list = []
        node_range = range(n)

        # Ping-pong inbox slot arrays: ``slots[i]`` is node i's inbox for
        # the current round (``None`` = nothing received), ``touched``
        # the indices holding one.  After a round the consumed slots are
        # nulled (O(touched)) and the arrays swap.
        slots: list = [None] * n
        touched: list = []
        next_slots: list = [None] * n
        next_touched: list = []

        round_number = 0
        while True:
            if exact_rounds is not None and round_number >= exact_rounds:
                break
            if (
                exact_rounds is None
                and round_number > 0
                and not touched
                and unfinished == 0
            ):
                break
            if round_number >= max_rounds:
                raise RoundLimitExceededError.for_run(
                    max_rounds, round_number, core.metrics.messages
                )

            any_message = False
            for index in node_range:
                algorithm = algos[index]
                inbox = slots[index]
                if inbox is None:
                    inbox = inbox_pool.pop() if inbox_pool else {}
                outbox = algorithm.on_round(round_number, inbox)
                if outbox:
                    any_message = True
                    deliver_vector(
                        round_number, labels[index], outbox, next_slots,
                        next_touched, pipeline, inbox_pool,
                    )
                # Recycle the consumed inbox (after delivery, in case the
                # algorithm returned its inbox as the outbox); same
                # ownership contract as the dense loop.
                if inbox:
                    inbox.clear()
                inbox_pool.append(inbox)
                memory = algorithm.memory_bits()
                if memory is not None:
                    on_memory_sample(labels[index], memory)
                finished = algorithm.finished
                if finished != finished_flags[index]:
                    finished_flags[index] = finished
                    unfinished += -1 if finished else 1
                wakes = wake_lists[index]
                if wakes:
                    # Drained like every engine so requests cannot pile
                    # up; cleared in place to keep the binding valid.
                    del wakes[:]
            on_round_end(round_number)

            round_number += 1
            for index in touched:
                slots[index] = None
            touched.clear()
            slots, next_slots = next_slots, slots
            touched, next_touched = next_touched, touched

            if exact_rounds is None and not any_message and unfinished == 0:
                break

        metrics = core.metrics
        metrics.rounds = round_number
        misses = transport.cache_misses - cache_misses_before
        metrics.size_cache_misses = misses
        metrics.size_cache_hits = max(0, metrics.messages - misses)
        metrics.size_cache_overflows = (
            transport.cache_overflows - cache_overflows_before
        )
        pipeline.on_run_end(metrics)
        results = {node: algorithm.result() for node, algorithm in algorithms.items()}
        return result_type(
            results=results,
            metrics=metrics,
            traffic=traffic_observer.traffic if traffic_observer is not None else None,
        )


    def _run_loop_faulty(
        self,
        network,
        algorithms: Dict[NodeId, NodeAlgorithm],
        scheduler: Scheduler,
        result_type,
        max_rounds: int,
        exact_rounds: Optional[int],
        record_traffic: bool,
        fault_model,
        run_index: int,
    ):
        """The fault-aware round loop (any scheduler, non-null model only).

        A sibling of :meth:`_run_loop` -- kept separate so the clean
        loops stay byte-identical to the pre-fault engine -- with four
        additions threaded through the same structure:

        * the resolved :class:`repro.faults.FaultPlan` decides message
          fates inside :meth:`repro.engine.transport.Transport.deliver_faulty`
          (drop / delay / on-time) and which nodes are down;
        * delayed messages live in ``pending`` keyed by absolute arrival
          round and are merged into the inboxes of that round (a normal
          message from the same sender wins -- it is newer); in-flight
          deliveries keep the run alive in every termination check, which
          is how the sparse scheduler's wake logic accounts for them;
        * crashed nodes are filtered out of the active set (fail-pause:
          their state is kept) and restarts are pre-registered as
          scheduler wakes so the sparse policy re-runs a restarted node;
        * a :class:`repro.engine.observers.FaultObserver` accounts
          degradation events into the run's metrics, and the model's
          ``timeout`` tightens ``max_rounds`` so stuck runs fail fast.

        The vector scheduler is handled here through its dense semantics
        (label-keyed inboxes, per-message delivery): fault decisions are
        per-message anyway, so the broadcast fast path does not apply.
        All fault decisions are stateless hashes of their coordinates
        (see :mod:`repro.faults`), so the dense, sparse and vector
        engines produce identical faulty executions.
        """
        core = CoreMetricsObserver(bandwidth_limit_bits=network.bandwidth_bits)
        traffic_observer = TrafficLogObserver() if record_traffic else None
        observers = [core, FaultObserver(core.metrics)]
        if traffic_observer is not None:
            observers.append(traffic_observer)
        if self._run_depth == 1:
            observers.extend(self.observers)
        pipeline = MetricsPipeline(observers)

        transport = self.transport
        transport.bandwidth_bits = network.bandwidth_bits
        transport.strict_bandwidth = network.strict_bandwidth
        indexed = network.graph.compile()
        transport.bind_topology(indexed)

        plan = fault_model.resolve(network._seed, indexed, run_index)
        if fault_model.timeout is not None:
            max_rounds = min(max_rounds, fault_model.timeout)
        # Crash/restart event schedules, inverted to round -> nodes in the
        # deterministic CSR label order the plan was built in.
        crash_events: Dict[int, list] = {}
        for node, at in plan.crash_round.items():
            crash_events.setdefault(at, []).append(node)
        restart_events: Dict[int, list] = {}
        for node, at in plan.restart_round.items():
            restart_events.setdefault(at, []).append(node)
        has_crashes = bool(plan.crash_round)
        has_churn = fault_model.churn > 0.0

        cache_misses_before = transport.cache_misses
        cache_overflows_before = transport.cache_overflows

        scheduler.begin_run(algorithms, indexed)
        uses_wakes = scheduler.uses_wakes

        finished_state: Dict[NodeId, bool] = {}
        unfinished = 0
        for node, algorithm in algorithms.items():
            finished = algorithm.finished
            finished_state[node] = finished
            if not finished:
                unfinished += 1
            requests = algorithm.consume_wake_requests()
            if uses_wakes and requests:
                for request in requests:
                    scheduler.request_wake(
                        node, 0 if request is None else max(0, request)
                    )
        if uses_wakes:
            # Restarted nodes must run at their restart round even with an
            # empty inbox; registering the wakes up-front also keeps
            # ``has_scheduled_wakes`` true through the outage, so the
            # sparse termination logic cannot declare quiescence while a
            # restart is still ahead.
            for node, at in plan.restart_round.items():
                scheduler.request_wake(node, at)

        pipeline.on_run_start(network)

        deliver_faulty = transport.deliver_faulty
        on_memory_sample = pipeline.on_memory_sample
        on_round_end = pipeline.on_round_end
        on_node_crashed = pipeline.on_node_crashed
        on_node_restarted = pipeline.on_node_restarted
        on_edge_churned = pipeline.on_edge_churned
        active_nodes = scheduler.active_nodes
        request_wake = scheduler.request_wake
        has_scheduled_wakes = scheduler.has_scheduled_wakes
        node_down = plan.node_down
        inbox_pool: list = []
        full_sequence = scheduler.all_nodes()
        algorithm_pairs = list(algorithms.items())

        #: In-flight delayed messages: arrival round -> [(sender, target,
        #: payload)] in delivery order.
        pending: Dict[int, list] = {}

        inboxes: Dict[NodeId, Inbox] = {}
        round_number = 0
        while True:
            # Delayed deliveries scheduled for this round re-enter the
            # inboxes before any termination check or scheduling decision.
            # ``setdefault``: an on-time message from the same sender was
            # sent later and wins over a delayed (older) one; among
            # delayed messages the earliest-sent wins.
            arrivals = pending.pop(round_number, None)
            if arrivals:
                for sender, target, payload in arrivals:
                    inbox = inboxes.get(target)
                    if inbox is None:
                        inbox = inbox_pool.pop() if inbox_pool else {}
                        inboxes[target] = inbox
                    inbox.setdefault(sender, payload)

            if exact_rounds is not None and round_number >= exact_rounds:
                break
            if exact_rounds is None and round_number > 0:
                pending_wakes = has_scheduled_wakes()
                if not inboxes and not pending_wakes and not pending:
                    if unfinished == 0:
                        break
                    if not plan.restarts_pending(round_number):
                        scheduler.check_quiescent(round_number, unfinished)
            if round_number >= max_rounds:
                raise RoundLimitExceededError.for_run(
                    max_rounds, round_number, core.metrics.messages
                )

            for node in crash_events.pop(round_number, ()):
                on_node_crashed(round_number, node)
            for node in restart_events.pop(round_number, ()):
                on_node_restarted(round_number, node)
            if has_churn:
                for u, v in plan.churned_edges(round_number):
                    on_edge_churned(round_number, u, v)

            active = active_nodes(round_number, inboxes)
            # Down nodes neither run nor drain their wakes (fail-pause);
            # their inboxes are already empty -- the transport drops
            # messages whose receiver is down at arrival.
            if has_crashes:
                items = [
                    (node, algorithms[node])
                    for node in active
                    if not node_down(round_number, node)
                ]
            elif active is full_sequence:
                items = algorithm_pairs
            else:
                items = [(node, algorithms[node]) for node in active]

            next_inboxes: Dict[NodeId, Inbox] = {}
            any_message = False
            inboxes_get = inboxes.get
            for node, algorithm in items:
                inbox = inboxes_get(node)
                if inbox is None:
                    inbox = inbox_pool.pop() if inbox_pool else {}
                outbox = algorithm.on_round(round_number, inbox)
                if outbox:
                    any_message = True
                    deliver_faulty(
                        round_number, node, outbox, next_inboxes, pipeline,
                        inbox_pool, plan, pending,
                    )
                if inbox:
                    inbox.clear()
                inbox_pool.append(inbox)
                memory = algorithm.memory_bits()
                if memory is not None:
                    on_memory_sample(node, memory)
                finished = algorithm.finished
                if finished != finished_state[node]:
                    finished_state[node] = finished
                    unfinished += -1 if finished else 1
                if getattr(algorithm, "_wake_requests", None):
                    requests = algorithm.consume_wake_requests()
                    if uses_wakes:
                        for request in requests:
                            request_wake(
                                node,
                                round_number + 1
                                if request is None
                                else max(request, round_number + 1),
                            )
            on_round_end(round_number)

            round_number += 1
            inboxes = next_inboxes

            if exact_rounds is None and not any_message:
                if (
                    unfinished == 0
                    and not has_scheduled_wakes()
                    and not pending
                ):
                    break

        metrics = core.metrics
        metrics.rounds = round_number
        misses = transport.cache_misses - cache_misses_before
        metrics.size_cache_misses = misses
        metrics.size_cache_hits = max(0, metrics.messages - misses)
        metrics.size_cache_overflows = (
            transport.cache_overflows - cache_overflows_before
        )
        pipeline.on_run_end(metrics)
        results = {node: algorithm.result() for node, algorithm in algorithms.items()}
        return result_type(
            results=results,
            metrics=metrics,
            traffic=traffic_observer.traffic if traffic_observer is not None else None,
        )


def build_engine(
    name: Optional[str],
    network: Any,
    observers: Sequence[MetricsObserver] = (),
) -> ExecutionEngine:
    """Build the engine registered under ``name`` for ``network``.

    ``name=None`` uses the process-wide default (see
    :func:`set_default_engine`).
    """
    resolved = resolve_engine_name(name)
    return ExecutionEngine(network, make_scheduler(resolved), observers=observers)
