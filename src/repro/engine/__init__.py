"""Pluggable execution engines for the CONGEST simulator.

The simulation core is decomposed into three composable components, wired
together by :class:`repro.engine.engine.ExecutionEngine`:

* **Scheduler** (:mod:`repro.engine.scheduler`) -- which nodes run in each
  round.  ``DenseScheduler`` reproduces the seed behaviour bit-for-bit;
  ``SparseScheduler`` is event-driven and skips idle nodes entirely, which
  turns Theta(n * rounds) scheduling work into Theta(activations) for the
  BFS-wave algorithms at the heart of the paper.
* **Transport** (:mod:`repro.engine.transport`) -- message validation,
  memoised size measurement and the bandwidth policy.
* **MetricsPipeline** (:mod:`repro.engine.observers`) -- pluggable
  observers replacing the inlined accounting and traffic-log code.

``repro.congest.network.Network`` remains the public facade: it builds an
engine at construction (``Network(graph, engine="sparse")``) and delegates
``run`` to it.  The process-wide default engine is controlled by
:func:`set_default_engine` (used by the CLI and benchmark flags).
"""

from repro.engine.engine import (
    ExecutionEngine,
    build_engine,
    get_default_engine,
    resolve_engine_name,
    set_default_engine,
)
from repro.engine.observers import (
    CoreMetricsObserver,
    FaultObserver,
    MetricsObserver,
    MetricsPipeline,
    RunLogObserver,
    StitchedTrafficObserver,
    TrafficLogObserver,
)
from repro.engine.scheduler import (
    SCHEDULERS,
    DenseScheduler,
    Scheduler,
    SparseScheduler,
    VectorScheduler,
    make_scheduler,
)
from repro.engine.transport import Transport

ENGINE_NAMES = tuple(sorted(SCHEDULERS))

__all__ = [
    "ExecutionEngine",
    "build_engine",
    "set_default_engine",
    "get_default_engine",
    "resolve_engine_name",
    "ENGINE_NAMES",
    "Scheduler",
    "DenseScheduler",
    "SparseScheduler",
    "VectorScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "Transport",
    "MetricsObserver",
    "MetricsPipeline",
    "CoreMetricsObserver",
    "FaultObserver",
    "TrafficLogObserver",
    "StitchedTrafficObserver",
    "RunLogObserver",
]
