"""Guarded numpy import shared by every numpy-dependent subsystem.

numpy is a *declared but optional* dependency (the ``repro[numpy]``
extra in ``pyproject.toml``): the stdlib compute tier, the CONGEST
simulator and the quantum schedule backends never touch it, while the
``numpy`` compute tier (:mod:`repro.tier`, :mod:`repro.graphs.vector`,
the vector execution engine) and the curve-fitting helpers
(:mod:`repro.analysis.fitting`) require it.  Those subsystems import
numpy through :func:`require_numpy` so a missing install fails with one
actionable message naming the extra instead of a bare
``ModuleNotFoundError`` deep inside a kernel.
"""

from __future__ import annotations

from typing import Optional

#: Name of the optional-dependency extra declared in ``pyproject.toml``.
NUMPY_EXTRA = "numpy"

#: Version floor mirrored from ``pyproject.toml`` (kept here so the
#: error message stays accurate without parsing packaging metadata).
NUMPY_REQUIREMENT = "numpy>=1.22"


def missing_numpy_message(feature: str) -> str:
    """The actionable error text for a numpy-dependent ``feature``."""
    return (
        f"{feature} requires numpy, which is not installed; "
        f"install the {NUMPY_EXTRA!r} extra "
        f"(pip install 'repro[{NUMPY_EXTRA}]') or {NUMPY_REQUIREMENT} "
        "directly, or keep using the pure-stdlib tier (--tier stdlib, "
        "the default)"
    )


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not installed."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def require_numpy(feature: str = "this feature"):
    """Import and return :mod:`numpy`, raising an actionable error if absent.

    The raised :class:`ImportError` names the feature that needed numpy
    and the ``repro[numpy]`` extra that provides it, so CLI users see a
    remedy instead of a traceback ending in ``No module named 'numpy'``.
    """
    try:
        import numpy
    except ImportError as exc:
        raise ImportError(missing_numpy_message(feature)) from exc
    return numpy


def numpy_version_or_none() -> Optional[str]:
    """numpy's version string for provenance records, or ``None``."""
    module = numpy_or_none()
    return None if module is None else getattr(module, "__version__", "unknown")
