"""Prometheus text exposition for the experiment service (``/metrics``).

A minimal, dependency-free renderer of the daemon's operational state in
the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4): job counts by ledger state, per-tenant active jobs, and
worker-slot capacity, plus the registered remote-dispatch worker count
when the daemon owns a coordinator.  Everything is derived on scrape
from the same snapshots the JSON API serves (``service.jobs()`` /
``service.capacity()``), so the two faces can never disagree.

Label values are escaped per the format spec (backslash, double quote,
newline); tenant names are already restricted to a safe pattern by the
store layer, but the escaping keeps the renderer correct for any input.
"""

from __future__ import annotations

from typing import Dict, List

from repro.service.jobs import JOB_STATES

#: Content type Prometheus scrapers expect for the text format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _sample(name: str, labels: Dict[str, str], value) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(labels[key])}"'
            for key in sorted(labels)
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def render_metrics(service) -> str:
    """The ``GET /metrics`` body for an :class:`ExperimentService`.

    Families (all gauges -- every value is a scrape-time snapshot of
    replayable ledger state, not a process-lifetime counter):

    * ``repro_service_jobs{state=...}`` -- job counts for every ledger
      state, zero-filled so absent states are visible to rate queries;
    * ``repro_service_tenant_active_jobs{tenant=...}`` -- queued+running
      jobs per tenant (the quota denominator);
    * ``repro_service_worker_slots{state=total|used|available}`` --
      the capacity report's worker-slot split;
    * ``repro_service_queued_jobs`` -- depth of the run queue;
    * ``repro_service_dispatch_workers`` / ``..._dispatch_idle_workers``
      -- registered and currently-idle remote-dispatch workers (only
      when the daemon owns a coordinator);
    * ``repro_service_dispatch_steals`` /
      ``..._dispatch_speculative_leases`` -- the adaptive scheduler's
      work-stealing and speculative re-execution counts since
      coordinator start (monotone within one coordinator lifetime;
      still exported as gauges like every other family here).
    """
    jobs = service.jobs()
    capacity = service.capacity()

    states = {state: 0 for state in JOB_STATES}
    for record in jobs:
        states[record.state] = states.get(record.state, 0) + 1

    lines: List[str] = [
        "# HELP repro_service_jobs Jobs in the ledger by state.",
        "# TYPE repro_service_jobs gauge",
    ]
    for state in JOB_STATES:
        lines.append(
            _sample("repro_service_jobs", {"state": state}, states[state])
        )

    lines += [
        "# HELP repro_service_tenant_active_jobs "
        "Active (queued or running) jobs per tenant.",
        "# TYPE repro_service_tenant_active_jobs gauge",
    ]
    for tenant in sorted(capacity["tenants"]):
        lines.append(
            _sample(
                "repro_service_tenant_active_jobs",
                {"tenant": tenant},
                capacity["tenants"][tenant]["used"],
            )
        )

    lines += [
        "# HELP repro_service_worker_slots "
        "Worker-pool slots by occupancy state.",
        "# TYPE repro_service_worker_slots gauge",
        _sample("repro_service_worker_slots", {"state": "total"},
                capacity["total"]["workers"]),
        _sample("repro_service_worker_slots", {"state": "used"},
                capacity["used"]["workers"]),
        _sample("repro_service_worker_slots", {"state": "available"},
                capacity["available"]["workers"]),
        "# HELP repro_service_queued_jobs Jobs waiting for a worker slot.",
        "# TYPE repro_service_queued_jobs gauge",
        _sample("repro_service_queued_jobs", {}, capacity["queued"]),
    ]

    coordinator = getattr(service, "coordinator", None)
    if coordinator is not None:
        dispatch = coordinator.stats()
        lines += [
            "# HELP repro_service_dispatch_workers "
            "Workers registered with the dispatch coordinator.",
            "# TYPE repro_service_dispatch_workers gauge",
            _sample("repro_service_dispatch_workers", {},
                    dispatch["registered_workers"]),
            "# HELP repro_service_dispatch_idle_workers "
            "Registered dispatch workers currently without a lease.",
            "# TYPE repro_service_dispatch_idle_workers gauge",
            _sample("repro_service_dispatch_idle_workers", {},
                    dispatch["idle_workers"]),
            "# HELP repro_service_dispatch_steals "
            "Shards split by work stealing since coordinator start.",
            "# TYPE repro_service_dispatch_steals gauge",
            _sample("repro_service_dispatch_steals", {},
                    dispatch["steals"]),
            "# HELP repro_service_dispatch_speculative_leases "
            "Speculative straggler re-leases since coordinator start.",
            "# TYPE repro_service_dispatch_speculative_leases gauge",
            _sample("repro_service_dispatch_speculative_leases", {},
                    dispatch["speculative_leases"]),
        ]

    return "\n".join(lines) + "\n"
