"""The experiment service daemon: a multi-tenant job queue over the store.

:class:`ExperimentService` owns three things:

* the **job ledger** (:class:`repro.service.jobs.JobLedger`) -- the
  durable queue.  Every submission and transition is appended before it
  is acknowledged, so a SIGKILLed daemon recovers its exact queue on
  restart (stale ``running`` leases are requeued and resume from their
  store checkpoints);
* the **worker pool** -- ``workers`` threads, each leasing one queued
  job at a time and executing it in a subprocess
  (:mod:`repro.service.worker`).  Process isolation is what lets each
  job honour its own engine/backend/tier/fault selections through the
  process-default registries.  While the subprocess runs, the thread
  polls the job store's completed-key scan for durable task-level
  progress;
* the **capacity accounting** (:mod:`repro.service.quota`) -- worker
  slots and per-tenant active-job quotas, all mutated and read under
  one state lock so concurrent submissions always see consistent
  total/used/available counts.

The HTTP face lives in :mod:`repro.service.api`; this module is fully
usable in-process (tests drive it directly).
"""

from __future__ import annotations

import collections
import os
import subprocess
import sys
import threading
import time
from typing import Any, Deque, Dict, List, Optional

from repro.dispatch import DispatchCoordinator
from repro.service import worker as worker_mod
from repro.service.gridspec import GridRequest
from repro.service.jobs import JobError, JobLedger, JobRecord
from repro.service.quota import QuotaPolicy, capacity_report
from repro.store import ExperimentStore, render_records

#: How often a worker thread refreshes a running job's progress from the
#: store's completed-key scan (and checks for shutdown).
_POLL_INTERVAL = 0.15


class ExperimentService:
    """The job daemon: submit/lease/execute/cancel over a durable ledger."""

    def __init__(
        self,
        data_dir,
        ledger_path=None,
        workers: int = 2,
        quota: Optional[QuotaPolicy] = None,
        poll_interval: float = _POLL_INTERVAL,
        dispatch: Optional[str] = None,
        dispatch_port: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if dispatch not in (None, "remote"):
            raise ValueError(
                f"service dispatch must be None or 'remote', got {dispatch!r}"
            )
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.ledger = JobLedger(
            os.path.join(self.data_dir, "jobs.jsonl")
            if ledger_path is None
            else ledger_path
        )
        self.workers = workers
        self.quota = quota or QuotaPolicy()
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = collections.deque()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: List[threading.Thread] = []
        self._procs: Dict[str, subprocess.Popen] = {}
        self._started = False
        # With dispatch="remote" the daemon owns one persistent
        # coordinator shared by every job that requests remote dispatch;
        # 'repro worker join' workers register against it once and serve
        # shards across jobs.
        self.dispatch = dispatch
        self.coordinator: Optional[DispatchCoordinator] = (
            DispatchCoordinator(port=dispatch_port)
            if dispatch == "remote" else None
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Recover the ledger and start the worker pool."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        if self.coordinator is not None:
            self.coordinator.start()
        recovered = self.ledger.recover()
        with self._lock:
            self._jobs = recovered
            for job_id, record in recovered.items():
                if record.state == "queued":
                    self._queue.append(job_id)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: checkpoint running jobs, stop the pool.

        Running worker subprocesses receive SIGTERM; their cooperative
        hook stops them between task completions and they exit with the
        *checkpointed* code, which requeues the job (durably) so the
        next daemon continues it from the store.
        """
        self._stop.set()
        self._wake.set()
        with self._lock:
            procs = list(self._procs.values())
        for proc in procs:
            try:
                proc.terminate()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self.coordinator is not None:
            self.coordinator.stop()

    # -- submission / queries ------------------------------------------
    def submit(self, tenant: str, request: GridRequest) -> JobRecord:
        """Validate, quota-check, persist and enqueue one job.

        Raises ``ValueError`` (bad request / tenant) or
        :class:`repro.service.quota.QuotaExceeded`; nothing is persisted
        on rejection, so a failing submission cannot occupy quota.
        """
        request.validate()
        if request.dispatch == "remote" and self.coordinator is None:
            raise ValueError(
                "this service has no dispatch coordinator; start the "
                "daemon with --dispatch remote to accept remote-dispatch "
                "jobs"
            )
        total = request.total_cells()
        with self._lock:
            self.quota.check_submit(tenant, self._jobs.values())
            job_id = self.ledger.next_job_id(self._jobs)
            record = JobRecord(
                job_id=job_id,
                tenant=tenant,
                request=request,
                store_name=f"{job_id}.jsonl",
                total=total,
                created=time.time(),
            )
            record.updated = record.created
            # Validates the tenant name (and creates the shard directory)
            # before the job is persisted.
            record.store(self.data_dir)
            self.ledger.append_job(record)
            self._jobs[job_id] = record
            self._queue.append(job_id)
        self._wake.set()
        return record

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        return record

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            records = list(self._jobs.values())
        if tenant is not None:
            records = [record for record in records if record.tenant == tenant]
        return sorted(records, key=lambda record: record.job_id)

    def capacity(self) -> Dict[str, Any]:
        with self._lock:
            return capacity_report(
                self.workers, self.quota, self._jobs.values()
            )

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; immediate for queued jobs.

        A queued job transitions to ``cancelled`` on the spot.  A running
        job gets a cancel sentinel next to its store; the worker
        subprocess notices between task completions and the final state
        (with its partial, durable progress) lands when it exits.
        Cancelling a terminal job raises :class:`JobError`.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise JobError(f"unknown job {job_id!r}")
            if record.state == "queued":
                record.state = "cancelled"
                record.cancel_requested = True
                record.detail = "cancelled before execution"
                record.updated = time.time()
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                self.ledger.append_state(
                    job_id, "cancelled", done=record.done,
                    detail=record.detail, cancel_requested=True,
                )
                return record
            if record.state == "running":
                record.cancel_requested = True
                record.updated = time.time()
                store_path = record.store(self.data_dir).path
                sentinel = worker_mod.cancel_sentinel_path(store_path)
                with open(sentinel, "w", encoding="utf-8") as handle:
                    handle.write(job_id + "\n")
                return record
            raise JobError(
                f"job {job_id!r} is already {record.state}; "
                "only queued or running jobs can be cancelled"
            )

    # -- results -------------------------------------------------------
    def results_text(self, job_id: str, format: str = "jsonl") -> str:
        """Rendered records of a job's store shard (partial while running).

        ``jsonl`` is the canonical export -- byte-identical to
        ``repro export --format jsonl`` on a local run of the same grid.
        """
        record = self.job(job_id)
        store = record.store(self.data_dir)
        return render_records(store.load_records(), format)

    # -- worker pool ---------------------------------------------------
    def _lease(self) -> Optional[JobRecord]:
        with self._lock:
            while self._queue:
                job_id = self._queue.popleft()
                record = self._jobs.get(job_id)
                if record is None or record.state != "queued":
                    continue  # cancelled (or foreign) while queued
                record.state = "running"
                record.updated = time.time()
                self.ledger.append_state(job_id, "running", done=record.done)
                return record
        return None

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            record = self._lease()
            if record is None:
                self._wake.wait(timeout=self.poll_interval)
                self._wake.clear()
                continue
            try:
                self._execute(record)
            except Exception as error:  # pragma: no cover - defensive
                self._finish(record, "failed", detail=f"worker error: {error}")

    def _execute(self, record: JobRecord) -> None:
        store = record.store(self.data_dir)
        sentinel = worker_mod.cancel_sentinel_path(store.path)
        if os.path.exists(sentinel):
            # A cancel left over for this shard (e.g. requested just as
            # the previous daemon died): honour it, don't run the job.
            os.unlink(sentinel)
            if record.cancel_requested:
                self._finish(record, "cancelled",
                             detail="cancelled before execution")
                return
        log_path = store.path + ".log"
        argv = [
            sys.executable, "-m", "repro.service.worker",
            "--ledger", self.ledger.path,
            "--data-dir", self.data_dir,
            "--job-id", record.job_id,
        ]
        if record.request.dispatch == "remote" and self.coordinator is not None:
            host, port = self.coordinator.address
            argv.extend(["--coordinator", f"{host}:{port}"])
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT
            )
        with self._lock:
            record.worker_pid = proc.pid
            self._procs[record.job_id] = proc
        try:
            while True:
                try:
                    proc.wait(timeout=self.poll_interval)
                    break
                except subprocess.TimeoutExpired:
                    self._refresh_progress(record, store)
                    if self._stop.is_set():
                        proc.terminate()
        finally:
            with self._lock:
                self._procs.pop(record.job_id, None)
        self._refresh_progress(record, store)
        self._conclude(record, proc.returncode, log_path, sentinel)

    def _refresh_progress(self, record: JobRecord, store: ExperimentStore) -> None:
        """Task-level progress: the store's durable completed-key count."""
        try:
            done = len(store.completed_keys())
        except OSError:  # pragma: no cover - transient fs error
            return
        with self._lock:
            if done != record.done:
                record.done = done
                record.updated = time.time()

    def _conclude(
        self, record: JobRecord, returncode: Optional[int],
        log_path: str, sentinel: str,
    ) -> None:
        if returncode == worker_mod.EXIT_DONE:
            self._finish(record, "done")
        elif returncode == worker_mod.EXIT_CANCELLED:
            if os.path.exists(sentinel):
                os.unlink(sentinel)
            self._finish(
                record, "cancelled",
                detail=f"cancelled after {record.done}/{record.total} cells",
            )
        elif returncode == worker_mod.EXIT_CHECKPOINTED:
            # Graceful shutdown checkpoint: back to the queue, durably;
            # the next lease resumes from the store.
            self._finish(record, "queued", detail="checkpointed on shutdown")
            if not self._stop.is_set():
                with self._lock:
                    self._queue.append(record.job_id)
                self._wake.set()
        else:
            detail = self._failure_detail(log_path, returncode)
            self._finish(record, "failed", detail=detail)

    @staticmethod
    def _failure_detail(log_path: str, returncode: Optional[int]) -> str:
        tail = ""
        try:
            with open(log_path, "r", encoding="utf-8", errors="replace") as handle:
                lines = handle.read().strip().splitlines()
            tail = " | ".join(lines[-3:])
        except OSError:
            pass
        detail = f"worker exited with code {returncode}"
        return f"{detail}: {tail}" if tail else detail

    def _finish(
        self, record: JobRecord, state: str, detail: Optional[str] = None
    ) -> None:
        with self._lock:
            record.state = state
            record.updated = time.time()
            if detail is not None:
                record.detail = detail
            self.ledger.append_state(
                record.job_id, state, done=record.done, detail=detail,
                cancel_requested=record.cancel_requested or None,
            )
