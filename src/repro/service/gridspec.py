"""The grid request: one shared description of a sweep/quantum grid.

``repro sweep`` run locally and ``repro jobs submit`` sent to the
experiment service must produce **byte-identical** canonical exports for
the same flags -- the acceptance differential of the service layer.
That identity is structural, not coincidental: both paths construct a
:class:`GridRequest` from the same parsed flags and execute it through
:func:`execute_grid_request`, so there is exactly one place where

* the user-facing ``--seed`` splits into the independent graph-stream /
  algorithm-stream seeds,
* family and size validation happens,
* algorithm (or quantum problem) names resolve to registry kernels, and
* the engine / schedule-backend / compute-tier / fault-model selections
  are applied around :func:`repro.analysis.sweep.run_sweep_grid`.

A request is plain data (JSON round-trip via :meth:`GridRequest.to_dict`
/ :meth:`GridRequest.from_dict`), so it travels over the service HTTP
API and sits in the job ledger unchanged.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import run_sweep_grid
from repro.dispatch import DISPATCH_NAMES
from repro.engine import ENGINE_NAMES, set_default_engine
from repro.faults import FaultModel
from repro.graphs import generators
from repro.quantum.backend import BACKEND_NAMES, set_default_schedule_backend
from repro.runner import (
    BatchRunner,
    GraphSpec,
    grid,
    resolve_algorithms,
    sweep_algorithm_for_problem,
    task_seed,
)
from repro.tier import TIER_NAMES, set_default_tier

#: How the algorithm names of a request resolve: ``sweep`` looks them up
#: in :data:`repro.runner.SWEEP_ALGORITHMS`, ``quantum`` treats them as
#: registered quantum problem names (the ``repro quantum`` command).
GRID_KINDS = ("sweep", "quantum")


def fault_model_from_flags(
    loss: float = 0.0,
    delay: float = 0.0,
    max_delay: int = 1,
    crash: float = 0.0,
    crash_window: int = 32,
    down_rounds: int = 0,
    churn: float = 0.0,
    timeout: Optional[int] = None,
    seed: int = 0,
) -> Optional[FaultModel]:
    """The fault model selected by the ``--loss/--crash/...`` flag values.

    Returns ``None`` (leave the process default alone) when no flag asks
    for an actual fault: probabilities at zero and no fault timeout.
    May raise ``ValueError`` for out-of-range values.
    """
    if not (loss or delay or crash or churn or timeout is not None):
        return None
    return FaultModel(
        loss=loss,
        delay=delay,
        max_delay=max_delay,
        crash=crash,
        crash_window=crash_window,
        down_rounds=down_rounds,
        churn=churn,
        timeout=timeout,
        seed=seed,
    )


@dataclass(frozen=True)
class GridRequest:
    """A complete, serializable description of one grid run.

    ``seed`` is the *user-facing* seed (the CLI ``--seed``); the derived
    graph-stream and algorithm-stream seeds are computed in
    :meth:`graph_seed` / :meth:`base_seed`, never stored, so a request
    round-tripped through JSON cannot drift from a locally parsed one.
    """

    families: Tuple[str, ...]
    sizes: Tuple[int, ...]
    algorithms: Tuple[str, ...]
    kind: str = "sweep"
    diameter: Optional[int] = None
    seed: int = 0
    jobs: int = 1
    engine: Optional[str] = None
    backend: Optional[str] = None
    tier: Optional[str] = None
    fault: Optional[FaultModel] = None
    dispatch: Optional[str] = None

    def __post_init__(self) -> None:
        # Normalise sequences to tuples so requests hash/compare by value
        # regardless of whether they came from argparse or JSON.
        object.__setattr__(self, "families", tuple(self.families))
        object.__setattr__(self, "sizes", tuple(int(size) for size in self.sizes))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))

    # -- validation ----------------------------------------------------
    def validate(self) -> None:
        """Reject malformed requests with the CLI's historical messages.

        Raises ``ValueError``; the CLI reports the message as a usage
        error (exit 2) and the service API as a structured 400.
        """
        if self.kind not in GRID_KINDS:
            raise ValueError(
                f"unknown grid kind {self.kind!r} (available: "
                + ", ".join(GRID_KINDS) + ")"
            )
        if not self.families:
            raise ValueError("a grid needs at least one family")
        if not self.sizes:
            raise ValueError("a grid needs at least one size")
        if not self.algorithms:
            raise ValueError("a grid needs at least one algorithm")
        for family in self.families:
            if family not in generators.SWEEP_FAMILIES and family != "controlled":
                known = ", ".join(
                    sorted(set(generators.SWEEP_FAMILIES) | {"controlled"})
                )
                raise ValueError(
                    f"unknown family {family!r} (available: {known})"
                )
        if "controlled" in self.families and self.diameter is None:
            raise ValueError("family 'controlled' requires --diameter")
        for size in self.sizes:
            if size < 1:
                raise ValueError(f"sizes must be >= 1, got {size}")
        if self.engine is not None and self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r} (available: "
                + ", ".join(ENGINE_NAMES) + ")"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown schedule backend {self.backend!r} (available: "
                + ", ".join(BACKEND_NAMES) + ")"
            )
        if self.tier is not None and self.tier not in TIER_NAMES:
            raise ValueError(
                f"unknown compute tier {self.tier!r} (available: "
                + ", ".join(TIER_NAMES) + ")"
            )
        if self.dispatch is not None and self.dispatch not in DISPATCH_NAMES:
            raise ValueError(
                f"unknown dispatch backend {self.dispatch!r} (available: "
                + ", ".join(DISPATCH_NAMES) + ")"
            )
        self.algorithm_table()  # raises on unknown algorithm/problem names

    # -- derived execution inputs --------------------------------------
    def graph_seed(self) -> int:
        """The graph-construction seed stream derived from ``seed``."""
        return task_seed(self.seed, "sweep-graph-stream")

    def base_seed(self) -> int:
        """The per-cell algorithm seed stream derived from ``seed``."""
        return task_seed(self.seed, "sweep-algorithm-stream")

    def specs(self) -> Tuple[GraphSpec, ...]:
        """The ``families x sizes`` grid as graph specs (spec-major)."""
        return grid(
            self.families, self.sizes, diameter=self.diameter,
            seed=self.graph_seed(),
        )

    def algorithm_table(self) -> Dict[str, Any]:
        """Resolved ``name -> kernel`` table for this request's kind."""
        if self.kind == "quantum":
            return dict(
                sweep_algorithm_for_problem(problem)
                for problem in self.algorithms
            )
        return resolve_algorithms(list(self.algorithms))

    def total_cells(self) -> int:
        """Number of ``(spec, algorithm)`` cells the grid produces."""
        return len(self.families) * len(self.sizes) * len(self.algorithms)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON representation (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "families": list(self.families),
            "sizes": list(self.sizes),
            "algorithms": list(self.algorithms),
            "diameter": self.diameter,
            "seed": self.seed,
            "jobs": self.jobs,
            "engine": self.engine,
            "backend": self.backend,
            "tier": self.tier,
            "dispatch": self.dispatch,
            "fault": None if self.fault is None else {
                item.name: getattr(self.fault, item.name)
                for item in fields(FaultModel)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GridRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Raises ``ValueError`` on unknown fields so a malformed API
        payload cannot silently drop a selection (e.g. a typoed
        ``"tir"`` running on the wrong tier).
        """
        known = {item.name for item in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown grid request fields {sorted(unknown)} "
                f"(allowed: {sorted(known)})"
            )
        fault = data.get("fault")
        if fault is not None and not isinstance(fault, FaultModel):
            if not isinstance(fault, Mapping):
                raise ValueError("'fault' must be an object of FaultModel fields")
            fault = FaultModel(**fault)
        return cls(
            families=tuple(data.get("families", ())),
            sizes=tuple(data.get("sizes", ())),
            algorithms=tuple(data.get("algorithms", ())),
            kind=data.get("kind", "sweep"),
            diameter=data.get("diameter"),
            seed=int(data.get("seed", 0)),
            jobs=int(data.get("jobs", 1)),
            engine=data.get("engine"),
            backend=data.get("backend"),
            tier=data.get("tier"),
            dispatch=data.get("dispatch"),
            fault=fault,
        )


@contextlib.contextmanager
def _process_default(value: Optional[str], setter: Callable[[str], str]):
    """Temporarily install a process-default registry selection.

    Process-wide so the batch runner ships the selection to its pool
    workers; restored afterwards so in-process callers (tests, the CLI
    invoked from a notebook) do not inherit a leaked default.
    """
    if value is None:
        yield
        return
    previous = setter(value)
    try:
        yield
    finally:
        setter(previous)


def execute_grid_request(
    request: GridRequest,
    runner: Optional[BatchRunner] = None,
    store=None,
    resume: bool = False,
    progress=None,
    should_stop=None,
    dispatch=None,
) -> List:
    """Run a grid request: the one execution path of CLI and daemon.

    Applies the request's engine / backend / tier selections as
    (restored) process defaults, threads its fault model through
    :func:`repro.analysis.sweep.run_sweep_grid`, and honours the
    checkpoint-store and cooperative progress/cancellation hooks.  The
    records -- and therefore the canonical export -- depend only on the
    request, never on who executed it.

    ``dispatch`` overrides the request's dispatch selection with a
    *configured* backend object -- the CLI and the service job worker
    pass a :class:`repro.dispatch.RemoteDispatch` bound to their
    coordinator here, since the bare name ``"remote"`` carries no
    address.  ``None`` falls back to ``request.dispatch`` (and a plain
    ``"remote"`` request with no configured backend fails loudly in
    :func:`repro.dispatch.resolve_dispatch`).
    """
    if dispatch is None:
        dispatch = request.dispatch
    if runner is None:
        runner = BatchRunner(jobs=request.jobs)
    with _process_default(request.engine, set_default_engine), \
            _process_default(request.backend, set_default_schedule_backend), \
            _process_default(request.tier, set_default_tier):
        return run_sweep_grid(
            request.specs(),
            request.algorithm_table(),
            runner=runner,
            base_seed=request.base_seed(),
            store=store,
            resume=resume,
            fault_model=request.fault,
            progress=progress,
            should_stop=should_stop,
            dispatch=dispatch,
        )
