"""Experiment service: a multi-tenant job daemon over the store/runner stack.

The service turns the local sweep workflow -- ``repro sweep --out
run.jsonl --resume`` -- into a long-running daemon that multiple tenants
share:

* :mod:`repro.service.gridspec` -- :class:`GridRequest`, the one
  serializable description of a sweep/quantum grid, executed identically
  by the CLI and by daemon workers (that shared path is what makes a
  daemon-run job's canonical export byte-identical to a local run);
* :mod:`repro.service.jobs` -- job model + durable JSONL ledger (replay
  reconstructs the queue after a crash);
* :mod:`repro.service.queue` -- :class:`ExperimentService`, the worker
  pool leasing jobs into per-job subprocesses with cooperative
  cancellation and SIGTERM checkpointing;
* :mod:`repro.service.quota` -- capacity accounting and per-tenant
  active-job quotas;
* :mod:`repro.service.metrics` -- Prometheus text exposition of job
  states, tenant activity, and worker capacity (``GET /metrics``);
* :mod:`repro.service.api` / :mod:`repro.service.client` -- the stdlib
  HTTP JSON face and its client, surfaced as ``repro serve`` and
  ``repro jobs ...``.

With ``repro serve --dispatch remote`` the daemon also owns a
:class:`repro.dispatch.DispatchCoordinator`; jobs submitted with
``"dispatch": "remote"`` fan their cells out to registered
``repro worker join`` workers instead of computing in the job
subprocess.
"""

from repro.service.gridspec import (
    GRID_KINDS,
    GridRequest,
    execute_grid_request,
    fault_model_from_flags,
)
from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    TERMINAL_STATES,
    JobError,
    JobLedger,
    JobRecord,
)
from repro.service.metrics import METRICS_CONTENT_TYPE, render_metrics
from repro.service.queue import ExperimentService
from repro.service.quota import QuotaExceeded, QuotaPolicy, capacity_report
from repro.service.api import serve_api
from repro.service.client import ServiceClient, ServiceClientError

__all__ = [
    "GRID_KINDS",
    "GridRequest",
    "execute_grid_request",
    "fault_model_from_flags",
    "JOB_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "JobError",
    "JobLedger",
    "JobRecord",
    "ExperimentService",
    "METRICS_CONTENT_TYPE",
    "render_metrics",
    "QuotaPolicy",
    "QuotaExceeded",
    "capacity_report",
    "serve_api",
    "ServiceClient",
    "ServiceClientError",
]
