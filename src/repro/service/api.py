"""The HTTP JSON API of the experiment service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer` -- like the numpy
compute tier, the service adds **no hard dependencies**; everything is
standard library.  Routes::

    GET  /health                      liveness + job counts
    GET  /capacity                    total/used/available worker slots,
                                      per-tenant quotas (MAAS pod style)
    GET  /metrics                     Prometheus text exposition (job
                                      counts, tenant activity, capacity)
    GET  /jobs[?tenant=NAME]          list jobs
    POST /jobs                        submit {"tenant": ..., "request": {...}}
    GET  /jobs/<id>                   status + progress
    POST /jobs/<id>/cancel            request cancellation
    GET  /jobs/<id>/results?format=F  rendered records (jsonl/csv/json);
                                      jsonl is the canonical export

Errors are structured JSON -- ``{"error": {"code", "message"}}`` -- with
conventional status codes: 400 malformed request, 404 unknown job or
route, 405 wrong method, 409 invalid transition, 429 quota exceeded.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.gridspec import GridRequest
from repro.service.jobs import JobError
from repro.service.metrics import METRICS_CONTENT_TYPE, render_metrics
from repro.service.queue import ExperimentService
from repro.service.quota import QuotaExceeded
from repro.store import EXPORT_FORMATS

#: Largest accepted request body; grid requests are tiny, so anything
#: bigger is a mistake (or abuse) and is rejected before parsing.
_MAX_BODY_BYTES = 1 << 20


class _APIError(Exception):
    """An error with an HTTP status and a structured payload."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class ServiceAPIHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the daemon owned by the server."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the daemon is quiet; progress is queryable, not logged

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: _APIError) -> None:
        self._send_json(
            error.status,
            {"error": {"code": error.code, "message": error.message}},
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise _APIError(400, "body_too_large",
                            f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _APIError(400, "empty_body", "a JSON body is required")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _APIError(400, "malformed_json", f"invalid JSON body: {error}")
        if not isinstance(payload, dict):
            raise _APIError(400, "malformed_json", "body must be a JSON object")
        return payload

    def _route(self) -> Tuple[Tuple[str, ...], Dict[str, str]]:
        parsed = urlparse(self.path)
        parts = tuple(part for part in parsed.path.split("/") if part)
        query = {
            key: values[0]
            for key, values in parse_qs(parsed.query).items()
            if values
        }
        return parts, query

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._dispatch("GET")
        except _APIError as error:
            self._send_error_json(error)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._dispatch("POST")
        except _APIError as error:
            self._send_error_json(error)

    def _dispatch(self, method: str) -> None:
        parts, query = self._route()
        if parts == ("health",) and method == "GET":
            return self._get_health()
        if parts == ("capacity",) and method == "GET":
            return self._send_json(200, self.service.capacity())
        if parts == ("metrics",) and method == "GET":
            return self._send_text(
                200, render_metrics(self.service), METRICS_CONTENT_TYPE
            )
        if parts == ("jobs",):
            if method == "GET":
                return self._get_jobs(query)
            return self._post_job()
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return self._get_job(parts[1])
        if len(parts) == 3 and parts[0] == "jobs":
            if parts[2] == "cancel" and method == "POST":
                return self._post_cancel(parts[1])
            if parts[2] == "results" and method == "GET":
                return self._get_results(parts[1], query)
        raise _APIError(
            404 if method in ("GET", "POST") else 405,
            "unknown_route",
            f"no such endpoint: {method} {self.path}",
        )

    # -- handlers ------------------------------------------------------
    def _get_health(self) -> None:
        jobs = self.service.jobs()
        states: Dict[str, int] = {}
        for record in jobs:
            states[record.state] = states.get(record.state, 0) + 1
        self._send_json(200, {"status": "ok", "jobs": states})

    def _get_jobs(self, query: Dict[str, str]) -> None:
        records = self.service.jobs(tenant=query.get("tenant"))
        self._send_json(200, {"jobs": [record.to_api() for record in records]})

    def _post_job(self) -> None:
        payload = self._read_body()
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise _APIError(400, "missing_tenant",
                            "'tenant' (non-empty string) is required")
        request_data = payload.get("request")
        if not isinstance(request_data, dict):
            raise _APIError(400, "missing_request",
                            "'request' (grid request object) is required")
        try:
            request = GridRequest.from_dict(request_data)
            record = self.service.submit(tenant, request)
        except QuotaExceeded as error:
            raise _APIError(429, "quota_exceeded", str(error))
        except ValueError as error:
            raise _APIError(400, "invalid_request", str(error))
        self._send_json(201, record.to_api())

    def _get_job(self, job_id: str) -> None:
        try:
            record = self.service.job(job_id)
        except JobError as error:
            raise _APIError(404, "unknown_job", str(error))
        self._send_json(200, record.to_api())

    def _post_cancel(self, job_id: str) -> None:
        try:
            record = self.service.cancel(job_id)
        except JobError as error:
            status = 404 if "unknown job" in str(error) else 409
            code = "unknown_job" if status == 404 else "invalid_transition"
            raise _APIError(status, code, str(error))
        self._send_json(200, record.to_api())

    def _get_results(self, job_id: str, query: Dict[str, str]) -> None:
        format = query.get("format", "jsonl")
        if format not in EXPORT_FORMATS:
            raise _APIError(
                400, "unknown_format",
                f"unknown format {format!r} (available: "
                + ", ".join(EXPORT_FORMATS) + ")",
            )
        try:
            text = self.service.results_text(job_id, format)
        except JobError as error:
            raise _APIError(404, "unknown_job", str(error))
        content_type = (
            "application/json" if format == "json" else "text/plain"
        )
        self._send_text(200, text, content_type)


class ServiceAPIServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True

    def __init__(self, address, service: ExperimentService) -> None:
        super().__init__(address, ServiceAPIHandler)
        self.service = service


def serve_api(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 0
) -> ServiceAPIServer:
    """Bind the API server (``port=0`` picks a free port; not yet serving).

    The caller drives ``serve_forever`` (usually on a thread) and pairs
    ``server.shutdown()`` with ``service.stop()``.
    """
    return ServiceAPIServer((host, port), service)
