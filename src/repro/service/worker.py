"""The job worker: a subprocess that executes one leased job.

Each daemon worker slot runs its job in a **separate process**
(``python -m repro.service.worker --ledger ... --job-id ...``) rather
than a thread, because a job's engine / schedule-backend / compute-tier
/ fault-model selections are applied through the process-default
registries -- two concurrent jobs with different selections must not
share a process.  The subprocess also gives the daemon a clean kill
boundary: cancellation and shutdown never have to unwind a half-run
grid in the daemon's own interpreter.

Cooperation protocol (all file-based, so it survives daemon restarts):

* the job's grid runs through
  :func:`repro.service.gridspec.execute_grid_request` with
  ``store=<per-tenant shard>, resume=True`` -- records flush as they
  complete, so any death loses at most the cells in flight;
* the ``should_stop`` hook checks a ``<store>.cancel`` sentinel written
  by the daemon's cancel endpoint, and a SIGTERM flag set by the
  daemon's graceful shutdown; both stop *between* task completions via
  :class:`repro.analysis.sweep.SweepCancelled`;
* the exit code tells the daemon what happened:
  0 done, 3 cancelled, 4 checkpointed (SIGTERM: requeue me),
  1 failed (traceback on stderr), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
import traceback
from typing import Optional, Sequence

from repro.analysis.sweep import SweepCancelled
from repro.dispatch import RemoteDispatch, parse_address
from repro.service.jobs import JobLedger
from repro.service.gridspec import execute_grid_request
from repro.store import StoreLockError, set_run_context

#: Worker exit codes, read back by the daemon's worker thread.
EXIT_DONE = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_CANCELLED = 3
EXIT_CHECKPOINTED = 4

#: How long a worker waits for a contended store shard before failing.
_LOCK_WAIT_SECONDS = 15.0


def cancel_sentinel_path(store_path: str) -> str:
    """The cancel-request sentinel file for a job store shard."""
    return os.fspath(store_path) + ".cancel"


def run_job(
    ledger_path: str,
    data_dir: str,
    job_id: str,
    coordinator: Optional[str] = None,
) -> int:
    """Execute one job from the ledger; returns the worker exit code."""
    ledger = JobLedger(ledger_path)
    records = ledger.replay()
    record = records.get(job_id)
    if record is None:
        print(f"unknown job id {job_id!r} in ledger {ledger_path!r}",
              file=sys.stderr)
        return EXIT_USAGE

    # A remote-dispatch job fans its cells out to the daemon's registered
    # 'repro worker join' workers instead of computing locally; the
    # daemon passes its coordinator address because the bare name
    # "remote" in the request carries none.
    dispatch = None
    if record.request.dispatch == "remote":
        if coordinator is None:
            print(
                f"job {job_id!r} requests remote dispatch but no "
                "--coordinator address was provided (daemon started "
                "without --dispatch remote?)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        dispatch = RemoteDispatch(
            address=parse_address(coordinator),
            kind=record.request.kind,
            workers=max(1, record.request.jobs),
        )

    store = record.store(data_dir)
    sentinel = cancel_sentinel_path(store.path)
    sigterm = {"received": False}

    def _on_sigterm(signum, frame):
        sigterm["received"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)

    def should_stop() -> bool:
        return sigterm["received"] or os.path.exists(sentinel)

    # Stamp the submitting tenant and job id into every run-provenance
    # header this job writes; the records themselves stay byte-identical
    # to a local run of the same request.
    set_run_context(tenant=record.tenant, job_id=record.job_id)
    deadline = time.monotonic() + _LOCK_WAIT_SECONDS
    while True:
        try:
            execute_grid_request(
                record.request,
                store=store,
                resume=True,
                should_stop=should_stop,
                dispatch=dispatch,
            )
        except SweepCancelled:
            return EXIT_CHECKPOINTED if sigterm["received"] else EXIT_CANCELLED
        except StoreLockError as error:
            # Another writer holds the shard -- typically an orphaned
            # worker from a killed daemon that has not yet died (a dead
            # holder's lock is broken automatically).  Wait briefly for
            # it to drain; past the deadline, failing loudly beats
            # interleaving appends.
            if time.monotonic() < deadline and not should_stop():
                time.sleep(0.5)
                continue
            print(str(error), file=sys.stderr)
            return EXIT_FAILED
        except Exception:
            traceback.print_exc()
            return EXIT_FAILED
        return EXIT_DONE


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service-worker",
        description="Execute one experiment-service job (internal; "
        "spawned by the daemon's worker pool).",
    )
    parser.add_argument("--ledger", required=True, help="job ledger path")
    parser.add_argument("--data-dir", required=True,
                        help="root of the per-tenant store shards")
    parser.add_argument("--job-id", required=True, help="job to execute")
    parser.add_argument(
        "--coordinator", default=None, metavar="HOST:PORT",
        help="dispatch coordinator for remote-dispatch jobs "
        "(passed by the daemon when started with --dispatch remote)",
    )
    args = parser.parse_args(argv)
    return run_job(args.ledger, args.data_dir, args.job_id,
                   coordinator=args.coordinator)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
