"""Jobs and the durable job ledger of the experiment service.

A **job** is one submitted grid request: a tenant, a
:class:`repro.service.gridspec.GridRequest`, and a per-tenant experiment
store shard the records land in.  Its lifecycle is::

    queued --> running --> done
                      \\-> failed
         \\----------- \\-> cancelled

plus the recovery edge ``running -> queued`` taken when a daemon restart
finds a stale lease (the previous daemon died mid-job); the job's store
checkpoint makes that resume exact.

The **ledger** is an append-only JSONL file -- the same durability
discipline as the experiment store, sharing its appender and its
truncated-tail-tolerant reader (:func:`repro.store.append_jsonl_line` /
:func:`repro.store.iter_jsonl_entries`) -- holding one ``job`` entry per
submission and one ``state`` entry per transition.  Replaying the file
reconstructs the queue exactly, so a SIGKILLed daemon resumes its queue
the way ``sweep --resume`` resumes a grid.  Task-level progress is *not*
written per cell: it is counted off the job store's completed-key scan
(:meth:`repro.store.ExperimentStore.completed_keys`), which is already
durable; the ledger only snapshots the count on state transitions.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.service.gridspec import GridRequest
from repro.store import (
    ExperimentStore,
    append_jsonl_line,
    iter_jsonl_entries,
)

#: Every state a job can be in.  ``queued`` and ``running`` are active
#: (they occupy quota); the rest are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
ACTIVE_STATES = frozenset({"queued", "running"})
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Ledger file schema, bumped on incompatible layout changes.
LEDGER_SCHEMA_VERSION = 1


class JobError(ValueError):
    """A job operation cannot be performed (unknown id, bad transition)."""


@dataclass
class JobRecord:
    """The daemon's view of one job, reconstructed by ledger replay."""

    job_id: str
    tenant: str
    request: GridRequest
    store_name: str
    total: int
    state: str = "queued"
    done: int = 0
    detail: Optional[str] = None
    cancel_requested: bool = False
    worker_pid: Optional[int] = None
    created: float = 0.0
    updated: float = 0.0

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def store(self, data_dir: str) -> ExperimentStore:
        """This job's per-tenant experiment store shard under ``data_dir``."""
        return ExperimentStore.namespaced(data_dir, self.tenant, self.store_name)

    def to_api(self) -> Dict[str, Any]:
        """The JSON shape served by the status endpoints."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "progress": {"done": self.done, "total": self.total},
            "cancel_requested": self.cancel_requested,
            "detail": self.detail,
            "created": self.created,
            "updated": self.updated,
            "request": self.request.to_dict(),
            "store": f"{self.tenant}/{self.store_name}",
        }


class JobLedger:
    """Append-only JSONL persistence of the service's job queue.

    One daemon owns one ledger; every mutation appends a line and
    flushes, so a killed daemon loses nothing it acknowledged.  Two
    entry kinds:

    * ``job`` -- a submission: id, tenant, the full grid request, the
      store shard name and the grid's total cell count.
    * ``state`` -- a transition: new state, the durable progress count
      at transition time, and optional detail (error text) / worker pid
      / cancel-request flag.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing -------------------------------------------------------
    def append_job(self, record: JobRecord) -> None:
        append_jsonl_line(
            self.path,
            {
                "kind": "job",
                "schema": LEDGER_SCHEMA_VERSION,
                "job_id": record.job_id,
                "tenant": record.tenant,
                "request": record.request.to_dict(),
                "store_name": record.store_name,
                "total": record.total,
                "created": record.created,
            },
        )

    def append_state(
        self,
        job_id: str,
        state: str,
        done: int = 0,
        detail: Optional[str] = None,
        worker_pid: Optional[int] = None,
        cancel_requested: Optional[bool] = None,
    ) -> None:
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        entry: Dict[str, Any] = {
            "kind": "state",
            "job_id": job_id,
            "state": state,
            "done": int(done),
            "at": time.time(),
        }
        if detail is not None:
            entry["detail"] = detail
        if worker_pid is not None:
            entry["worker_pid"] = worker_pid
        if cancel_requested is not None:
            entry["cancel_requested"] = bool(cancel_requested)
        append_jsonl_line(self.path, entry)

    # -- replay --------------------------------------------------------
    def replay(self) -> Dict[str, JobRecord]:
        """Reconstruct every job's latest state, in submission order.

        Unknown-job state entries and malformed entries are skipped (the
        only corruption an append-only writer can produce is a truncated
        tail, already dropped by the shared reader; anything else is a
        foreign line that must not take the queue down).
        """
        records: Dict[str, JobRecord] = {}
        for entry in iter_jsonl_entries(self.path):
            kind = entry.get("kind")
            if kind == "job":
                try:
                    record = JobRecord(
                        job_id=str(entry["job_id"]),
                        tenant=str(entry["tenant"]),
                        request=GridRequest.from_dict(entry["request"]),
                        store_name=str(entry["store_name"]),
                        total=int(entry["total"]),
                        created=float(entry.get("created", 0.0)),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                record.updated = record.created
                # First write wins, like the store's completed-cell scan:
                # a duplicate submission line cannot reset a job.
                records.setdefault(record.job_id, record)
            elif kind == "state":
                record = records.get(entry.get("job_id"))
                if record is None:
                    continue
                state = entry.get("state")
                if state not in JOB_STATES:
                    continue
                record.state = state
                record.done = int(entry.get("done", record.done))
                record.updated = float(entry.get("at", record.updated))
                if "detail" in entry:
                    record.detail = entry["detail"]
                if "worker_pid" in entry:
                    record.worker_pid = entry["worker_pid"]
                if "cancel_requested" in entry:
                    record.cancel_requested = bool(entry["cancel_requested"])
        return records

    def recover(self) -> Dict[str, JobRecord]:
        """Replay and release stale leases (daemon startup).

        A job still marked ``running`` was leased by a daemon that died
        without transitioning it; requeue it -- keeping any pending
        cancel request -- so a worker re-leases it and ``resume=True``
        continues from the store checkpoint.
        """
        records = self.replay()
        for record in records.values():
            if record.state == "running":
                self.append_state(
                    record.job_id,
                    "queued",
                    done=record.done,
                    detail="requeued after daemon restart (stale lease)",
                    cancel_requested=record.cancel_requested,
                )
                record.state = "queued"
                record.detail = "requeued after daemon restart (stale lease)"
        return records

    def next_job_id(self, records: Optional[Mapping[str, JobRecord]] = None) -> str:
        """The next sequential job id (``job-000001``, ``job-000002``, ...)."""
        if records is None:
            records = self.replay()
        highest = 0
        for job_id in records:
            try:
                highest = max(highest, int(job_id.rsplit("-", 1)[-1]))
            except ValueError:
                continue
        return f"job-{highest + 1:06d}"
