"""A stdlib HTTP client for the experiment service.

:class:`ServiceClient` wraps the JSON API in :mod:`repro.service.api`
using only :mod:`urllib` -- the same no-new-dependencies rule as the
server side.  API errors surface as :class:`ServiceClientError` carrying
the HTTP status and the server's structured ``error.code`` / message, so
callers (the ``repro jobs`` CLI, tests) can branch on *why* a call
failed without parsing prose.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.service.gridspec import GridRequest
from repro.service.jobs import TERMINAL_STATES


class ServiceClientError(RuntimeError):
    """An API call failed; carries the HTTP status and error code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Talks to one ``repro serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise self._api_error(error)
        except urllib.error.URLError as error:
            raise ServiceClientError(
                0, "unreachable",
                f"cannot reach service at {self.base_url}: {error.reason}",
            )

    @staticmethod
    def _api_error(error: urllib.error.HTTPError) -> ServiceClientError:
        status = error.code
        code, message = "http_error", f"HTTP {status}"
        try:
            payload = json.loads(error.read().decode("utf-8"))
            detail = payload.get("error", {})
            code = detail.get("code", code)
            message = detail.get("message", message)
        except (ValueError, AttributeError):
            pass
        return ServiceClientError(status, code, message)

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return json.loads(self._request(method, path, payload).decode("utf-8"))

    # -- API surface ---------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/health")

    def capacity(self) -> Dict[str, Any]:
        return self._json("GET", "/capacity")

    def submit(self, tenant: str, request: GridRequest) -> Dict[str, Any]:
        """Submit a grid request; returns the job's status payload."""
        return self._json(
            "POST", "/jobs",
            {"tenant": tenant, "request": request.to_dict()},
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def list_jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._json("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def results(self, job_id: str, format: str = "jsonl") -> str:
        """The job's rendered records; jsonl is the canonical export."""
        raw = self._request("GET", f"/jobs/{job_id}/results?format={format}")
        return raw.decode("utf-8")

    def watch(
        self,
        job_id: str,
        poll: float = 0.2,
        timeout: Optional[float] = None,
        on_progress=None,
    ) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal state.

        ``on_progress(status_dict)`` fires on every poll; a ``timeout``
        (seconds) bounds the wait and raises :class:`ServiceClientError`
        with code ``watch_timeout`` when exceeded.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if on_progress is not None:
                on_progress(status)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceClientError(
                    0, "watch_timeout",
                    f"job {job_id} still {status['state']} after {timeout}s",
                )
            time.sleep(poll)
