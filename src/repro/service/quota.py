"""Capacity accounting and per-tenant quotas for the experiment service.

Follows the MAAS pod-handler pattern: capacity is reported as parallel
``total`` / ``used`` / ``available`` maps over the same keys, where
``available = total - used`` by construction, plus a per-tenant section
with the same three-way split over the tenant's job quota.  Keeping the
arithmetic in one place (and computing it under the daemon's state lock)
is what makes the counts consistent under concurrent submissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable

from repro.service.jobs import JobRecord


class QuotaExceeded(ValueError):
    """A submission would exceed the tenant's active-job quota."""


@dataclass(frozen=True)
class QuotaPolicy:
    """Limits applied per tenant at submission time.

    ``tenant_jobs`` caps a tenant's *active* jobs (queued + running);
    terminal jobs never count, so a tenant can submit indefinitely as
    long as it drains.  One tenant hitting its quota is rejected with a
    structured error and has no effect on other tenants' queues.
    """

    tenant_jobs: int = 8

    def __post_init__(self) -> None:
        if self.tenant_jobs < 1:
            raise ValueError(
                f"tenant_jobs must be >= 1, got {self.tenant_jobs!r}"
            )

    def check_submit(self, tenant: str, jobs: Iterable[JobRecord]) -> None:
        """Raise :class:`QuotaExceeded` when ``tenant`` is at its cap."""
        active = sum(
            1 for job in jobs if job.tenant == tenant and job.active
        )
        if active >= self.tenant_jobs:
            raise QuotaExceeded(
                f"tenant {tenant!r} has {active} active job(s), at its "
                f"quota of {self.tenant_jobs}; wait for one to finish or "
                "cancel one"
            )


def capacity_report(
    workers: int, policy: QuotaPolicy, jobs: Iterable[JobRecord]
) -> Dict[str, Any]:
    """The ``/capacity`` payload: worker slots and per-tenant quotas.

    ``total`` / ``used`` / ``available`` mirror the MAAS pod capacity
    shape; ``used`` counts running jobs (each occupies one worker slot),
    and ``queued`` is reported alongside so a client can tell a busy
    service from an idle one.  The per-tenant section applies the same
    three-way split to the active-job quota.
    """
    jobs = list(jobs)
    running = sum(1 for job in jobs if job.state == "running")
    queued = sum(1 for job in jobs if job.state == "queued")
    tenants: Dict[str, Dict[str, int]] = {}
    for job in jobs:
        entry = tenants.setdefault(
            job.tenant,
            {"total": policy.tenant_jobs, "used": 0, "available": 0},
        )
        if job.active:
            entry["used"] += 1
    for entry in tenants.values():
        entry["available"] = max(0, entry["total"] - entry["used"])
    return {
        "total": {"workers": workers},
        "used": {"workers": running},
        "available": {"workers": max(0, workers - running)},
        "queued": queued,
        "tenants": {name: tenants[name] for name in sorted(tenants)},
    }
