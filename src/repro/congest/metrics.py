"""Execution metrics collected by the CONGEST simulator.

The benchmark harnesses compare *measured* metrics against the paper's
round-complexity formulas, so the simulator records:

* ``rounds`` -- the number of communication rounds used;
* ``messages`` -- the total number of (directed) messages delivered;
* ``total_bits`` -- the total number of bits sent over all edges and rounds;
* ``max_edge_bits_per_round`` -- the largest message observed on any single
  edge in any single round (to compare with the bandwidth budget);
* ``bandwidth_limit_bits`` / ``bandwidth_violations`` -- the configured
  budget and how many (edge, round) pairs exceeded it (when the network runs
  in non-strict mode, e.g. for the congestion ablation);
* ``max_node_memory_bits`` -- the largest per-node working-memory footprint
  reported by the algorithms (when they implement ``memory_bits``);
* ``dropped_messages`` / ``delayed_messages`` / ``node_crashes`` /
  ``node_restarts`` / ``churned_edge_rounds`` -- degradation counters of
  the fault layer (:mod:`repro.faults`): messages lost (to loss, churn or
  a crashed receiver), messages that arrived late, crash and restart
  events, and (edge, round) pairs in which a churned edge was down.  All
  zero under the null fault model;
* ``size_cache_hits`` / ``size_cache_misses`` / ``size_cache_overflows`` --
  effectiveness of the transport's payload-size memo cache during the run
  (a hit skips re-measuring a payload; an overflow is a payload measured
  but not cached because the cache budget was exhausted).  Stamped by the
  execution engine so benchmark reports can show cache behaviour.

Metrics compose: multi-phase algorithms (leader election, then BFS, then the
quantum optimization loop, ...) sum their phases with :meth:`ExecutionMetrics.merged`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


@dataclass
class ExecutionMetrics:
    """Aggregated cost of one (phase of a) distributed execution."""

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_edge_bits_per_round: int = 0
    bandwidth_limit_bits: Optional[int] = None
    bandwidth_violations: int = 0
    max_node_memory_bits: int = 0
    # Fault-layer degradation counters (zero under the null fault model).
    dropped_messages: int = 0
    delayed_messages: int = 0
    node_crashes: int = 0
    node_restarts: int = 0
    churned_edge_rounds: int = 0
    # Cache-effectiveness diagnostics.  Excluded from equality: they
    # describe *how* the simulation executed (cold vs warm memo cache,
    # serial vs pool-worker layout), not *what* it computed, so two
    # semantically identical runs may legitimately differ here.
    size_cache_hits: int = field(default=0, compare=False)
    size_cache_misses: int = field(default=0, compare=False)
    size_cache_overflows: int = field(default=0, compare=False)
    phase_rounds: Dict[str, int] = field(default_factory=dict)

    def record_phase(self, name: str, rounds: int) -> None:
        """Remember how many rounds a named phase contributed."""
        self.phase_rounds[name] = self.phase_rounds.get(name, 0) + rounds

    def merged(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        """Return the metrics of running ``self`` then ``other`` sequentially."""
        merged = ExecutionMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_edge_bits_per_round=max(
                self.max_edge_bits_per_round, other.max_edge_bits_per_round
            ),
            bandwidth_limit_bits=_merge_limits(
                self.bandwidth_limit_bits, other.bandwidth_limit_bits
            ),
            bandwidth_violations=self.bandwidth_violations
            + other.bandwidth_violations,
            max_node_memory_bits=max(
                self.max_node_memory_bits, other.max_node_memory_bits
            ),
            dropped_messages=self.dropped_messages + other.dropped_messages,
            delayed_messages=self.delayed_messages + other.delayed_messages,
            node_crashes=self.node_crashes + other.node_crashes,
            node_restarts=self.node_restarts + other.node_restarts,
            churned_edge_rounds=self.churned_edge_rounds
            + other.churned_edge_rounds,
            size_cache_hits=self.size_cache_hits + other.size_cache_hits,
            size_cache_misses=self.size_cache_misses + other.size_cache_misses,
            size_cache_overflows=self.size_cache_overflows
            + other.size_cache_overflows,
        )
        merged.phase_rounds = dict(self.phase_rounds)
        for name, rounds in other.phase_rounds.items():
            merged.phase_rounds[name] = merged.phase_rounds.get(name, 0) + rounds
        return merged

    def scaled(self, repetitions: int) -> "ExecutionMetrics":
        """Return the metrics of repeating this execution ``repetitions`` times.

        Used by the quantum framework, where one amplitude-amplification
        iteration repeats the Setup/Evaluation circuits a computed number of
        times.
        """
        if repetitions < 0:
            raise ValueError(f"repetitions must be >= 0, got {repetitions}")
        scaled = ExecutionMetrics(
            rounds=self.rounds * repetitions,
            messages=self.messages * repetitions,
            total_bits=self.total_bits * repetitions,
            max_edge_bits_per_round=self.max_edge_bits_per_round,
            bandwidth_limit_bits=self.bandwidth_limit_bits,
            bandwidth_violations=self.bandwidth_violations * repetitions,
            max_node_memory_bits=self.max_node_memory_bits,
            dropped_messages=self.dropped_messages * repetitions,
            delayed_messages=self.delayed_messages * repetitions,
            node_crashes=self.node_crashes * repetitions,
            node_restarts=self.node_restarts * repetitions,
            churned_edge_rounds=self.churned_edge_rounds * repetitions,
            size_cache_hits=self.size_cache_hits * repetitions,
            size_cache_misses=self.size_cache_misses * repetitions,
            size_cache_overflows=self.size_cache_overflows * repetitions,
        )
        scaled.phase_rounds = {
            name: rounds * repetitions for name, rounds in self.phase_rounds.items()
        }
        return scaled

    @staticmethod
    def total(metrics: Iterable["ExecutionMetrics"]) -> "ExecutionMetrics":
        """Sum a sequence of metrics (sequential composition)."""
        result = ExecutionMetrics()
        for item in metrics:
            result = result.merged(item)
        return result


def _merge_limits(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
