"""The round-synchronous CONGEST network simulator.

:class:`Network` wraps a :class:`repro.graphs.graph.Graph` and executes
per-node :class:`repro.congest.node.NodeAlgorithm` state machines in
synchronous rounds, delivering messages with a one-round latency and
accounting for rounds, messages, bits, per-edge bandwidth and per-node
memory (see :mod:`repro.congest.metrics`).

Execution engines.  Since the ``repro.engine`` refactor, ``Network`` is a
thin facade: the round loop itself lives in
:class:`repro.engine.engine.ExecutionEngine`, which composes a *scheduler*
(which nodes run each round), a *transport* (message delivery + bandwidth
policy, with a payload-size memo cache) and a *metrics pipeline* (pluggable
observers).  ``Network(graph, engine="dense")`` reproduces the historical
behaviour bit-for-bit; ``engine="sparse"`` skips idle nodes entirely, which
is asymptotically faster for the paper's BFS-wave algorithms and produces
identical metrics for idle-quiescent algorithms (see
:mod:`repro.engine.scheduler`).

Bandwidth.  The CONGEST model allows ``bw = O(log n)`` bits per edge per
round.  By default the simulator uses ``bw = BANDWIDTH_LOG_FACTOR *
ceil(log2(n + 1))`` bits, which is enough for a constant number of node
identifiers and counters per message -- exactly the granularity at which the
paper's algorithms communicate.  In *strict* mode exceeding the budget
raises :class:`repro.congest.errors.BandwidthExceededError`; in non-strict
mode violations are only counted, which the congestion-ablation benchmark
uses to show why the naive (non-pipelined) multi-source BFS breaks the
model.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.congest.metrics import ExecutionMetrics
from repro.congest.node import NodeAlgorithm
from repro.graphs.graph import Graph, NodeId

#: Multiplier applied to ``ceil(log2(n+1))`` to obtain the default bandwidth.
#: The paper allows any O(log n) bandwidth; the constant 16 accommodates a
#: small constant number of identifiers/counters plus framing per message.
BANDWIDTH_LOG_FACTOR = 16

#: Multiplier of ``n + 2`` used for the default round cap.  The natural
#: budget for the paper's algorithms would be ``O(n + D)``, but the diameter
#: ``D`` is not computable up-front (it is exactly what the algorithms set
#: out to measure), so the simulator falls back to a generous multiple of
#: ``n`` -- which dominates ``D`` on a connected graph.  An algorithm that
#: has not terminated after ``DEFAULT_MAX_ROUND_FACTOR * (n + 2)`` rounds is
#: assumed to be stuck and aborted with
#: :class:`repro.congest.errors.RoundLimitExceededError`.
DEFAULT_MAX_ROUND_FACTOR = 64

AlgorithmFactory = Callable[[NodeId, "Network"], NodeAlgorithm]


@dataclass
class ExecutionResult:
    """Outcome of running one distributed algorithm to completion."""

    results: Dict[NodeId, Any]
    metrics: ExecutionMetrics
    traffic: Optional[list] = None

    @property
    def rounds(self) -> int:
        """Number of rounds the execution used."""
        return self.metrics.rounds


class Network:
    """A CONGEST network over a static topology.

    Parameters
    ----------
    graph:
        The (connected) communication topology.
    bandwidth_bits:
        Per-edge per-round bandwidth budget.  Defaults to
        ``BANDWIDTH_LOG_FACTOR * ceil(log2(n + 1))``.
    strict_bandwidth:
        When true (the default), exceeding the budget raises
        :class:`BandwidthExceededError`; otherwise violations are counted in
        the metrics.
    seed:
        Seed for the per-node pseudo-random generators.
    engine:
        Execution-engine name: ``"dense"`` (the historical every-node-every-
        round loop) or ``"sparse"`` (event-driven, idle nodes are skipped).
        ``None`` uses the process-wide default
        (:func:`repro.engine.set_default_engine`).
    fault_model:
        A :class:`repro.faults.FaultModel` (or registry name) injected
        into every run of this network: seeded message loss/delay, node
        crash/restart and edge churn.  ``None`` uses the process-wide
        default (:func:`repro.faults.set_default_fault_model`), which is
        the null model unless changed -- and the null model is
        byte-identical to the fault-free simulator.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth_bits: Optional[int] = None,
        strict_bandwidth: bool = True,
        seed: Optional[int] = None,
        engine: Optional[str] = None,
        fault_model=None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ValueError("cannot build a network over an empty graph")
        # Compiling here both performs the connectivity check on the CSR
        # fast path and warms the cached view the engine binds per run.
        if not graph.compile().is_connected():
            raise ValueError("the CONGEST network topology must be connected")
        self.graph = graph
        self.num_nodes = graph.num_nodes
        if bandwidth_bits is None:
            bandwidth_bits = BANDWIDTH_LOG_FACTOR * max(
                1, math.ceil(math.log2(self.num_nodes + 1))
            )
        if bandwidth_bits < 1:
            raise ValueError(f"bandwidth must be >= 1 bit, got {bandwidth_bits}")
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = strict_bandwidth
        self._seed = seed if seed is not None else 0

        # Resolved at construction time (like the engine), so a network
        # keeps its fault configuration even if the process default is
        # flipped between runs.
        from repro.faults import resolve_fault_model

        self.fault_model = resolve_fault_model(fault_model)

        # Imported lazily: repro.engine depends on the sibling congest
        # modules, so a module-level import here would be circular.
        from repro.engine import build_engine

        self._engine = build_engine(engine, self)

    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        """Name of the execution engine driving this network's runs."""
        return self._engine.name

    @property
    def engine(self):
        """The underlying :class:`repro.engine.engine.ExecutionEngine`."""
        return self._engine

    def add_observer(self, observer) -> None:
        """Attach a persistent :class:`repro.engine.MetricsObserver`.

        The observer is notified on every subsequent *top-level* ``run``
        of this network (in addition to the per-run accounting), e.g. the
        stitched traffic recorder of the Theorem-10 two-party reduction.
        Nested (re-entrant) runs are not reported, so cross-run accounting
        like the stitched transcript stays sequential.
        """
        self._engine.observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach an observer previously added with :meth:`add_observer`."""
        self._engine.observers.remove(observer)

    # ------------------------------------------------------------------
    def neighbors(self, node: NodeId):
        """Neighbours of ``node`` as a cached tuple from the compiled view.

        Algorithm factories should use this instead of
        ``network.graph.neighbors(node)``: the tuple is prebound on the
        CSR view (no per-call list copy) and stays valid for the
        network's lifetime -- the topology of a network is static.
        """
        return self.graph.compile().neighbors(node)

    def node_rng(self, node: NodeId) -> random.Random:
        """Deterministic per-node random generator.

        Seeded from a CRC of the network seed and the node identifier so
        that executions are reproducible across processes (Python's built-in
        ``hash`` of strings is randomised per process).
        """
        digest = zlib.crc32(f"{self._seed}|{node!r}".encode("utf-8"))
        return random.Random(digest)

    def default_max_rounds(self) -> int:
        """A generous round cap used when the caller does not provide one."""
        return DEFAULT_MAX_ROUND_FACTOR * (self.num_nodes + 2)

    # ------------------------------------------------------------------
    def run(
        self,
        factory: AlgorithmFactory,
        max_rounds: Optional[int] = None,
        exact_rounds: Optional[int] = None,
        record_traffic: bool = False,
    ) -> ExecutionResult:
        """Run one distributed algorithm to completion.

        Delegates to the configured execution engine; the signature and
        semantics are unchanged from the pre-engine simulator.

        Parameters
        ----------
        factory:
            Called as ``factory(node_id, network)`` to create the per-node
            state machine.
        max_rounds:
            Abort with :class:`RoundLimitExceededError` if the algorithm has
            not finished after this many rounds.
        exact_rounds:
            When given, run exactly this many rounds regardless of the
            nodes' ``finished`` flags (used for fixed-schedule procedures
            such as the Figure-2 Evaluation, whose duration is known to all
            nodes up-front).
        record_traffic:
            When true, the result carries a per-message traffic log of
            ``(round, sender, receiver, bits)`` tuples.  The two-party
            reduction of Theorem 10 uses it to measure how many bits cross
            the cut of a gadget graph in each round.

        Returns
        -------
        ExecutionResult
            Per-node results (``algorithm.result()``) and execution metrics.
        """
        return self._engine.run(
            factory,
            max_rounds=max_rounds,
            exact_rounds=exact_rounds,
            record_traffic=record_traffic,
        )
