"""The round-synchronous CONGEST network simulator.

:class:`Network` wraps a :class:`repro.graphs.graph.Graph` and executes
per-node :class:`repro.congest.node.NodeAlgorithm` state machines in
synchronous rounds, delivering messages with a one-round latency and
accounting for rounds, messages, bits, per-edge bandwidth and per-node
memory (see :mod:`repro.congest.metrics`).

Bandwidth.  The CONGEST model allows ``bw = O(log n)`` bits per edge per
round.  By default the simulator uses ``bw = BANDWIDTH_LOG_FACTOR *
ceil(log2(n + 1))`` bits, which is enough for a constant number of node
identifiers and counters per message -- exactly the granularity at which the
paper's algorithms communicate.  In *strict* mode exceeding the budget
raises :class:`repro.congest.errors.BandwidthExceededError`; in non-strict
mode violations are only counted, which the congestion-ablation benchmark
uses to show why the naive (non-pipelined) multi-source BFS breaks the
model.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolError,
    RoundLimitExceededError,
)
from repro.congest.message import message_size_bits
from repro.congest.metrics import ExecutionMetrics
from repro.congest.node import Inbox, NodeAlgorithm
from repro.graphs.graph import Graph, NodeId

#: Multiplier applied to ``ceil(log2(n+1))`` to obtain the default bandwidth.
#: The paper allows any O(log n) bandwidth; the constant 16 accommodates a
#: small constant number of identifiers/counters plus framing per message.
BANDWIDTH_LOG_FACTOR = 16

#: Default cap on the number of rounds, as a multiple of ``n + D`` is not
#: computable up-front, so we use a generous multiple of ``n``.
DEFAULT_MAX_ROUND_FACTOR = 64

AlgorithmFactory = Callable[[NodeId, "Network"], NodeAlgorithm]


@dataclass
class ExecutionResult:
    """Outcome of running one distributed algorithm to completion."""

    results: Dict[NodeId, Any]
    metrics: ExecutionMetrics
    traffic: Optional[list] = None

    @property
    def rounds(self) -> int:
        """Number of rounds the execution used."""
        return self.metrics.rounds


class Network:
    """A CONGEST network over a static topology.

    Parameters
    ----------
    graph:
        The (connected) communication topology.
    bandwidth_bits:
        Per-edge per-round bandwidth budget.  Defaults to
        ``BANDWIDTH_LOG_FACTOR * ceil(log2(n + 1))``.
    strict_bandwidth:
        When true (the default), exceeding the budget raises
        :class:`BandwidthExceededError`; otherwise violations are counted in
        the metrics.
    seed:
        Seed for the per-node pseudo-random generators.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth_bits: Optional[int] = None,
        strict_bandwidth: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ValueError("cannot build a network over an empty graph")
        if not graph.is_connected():
            raise ValueError("the CONGEST network topology must be connected")
        self.graph = graph
        self.num_nodes = graph.num_nodes
        if bandwidth_bits is None:
            bandwidth_bits = BANDWIDTH_LOG_FACTOR * max(
                1, math.ceil(math.log2(self.num_nodes + 1))
            )
        if bandwidth_bits < 1:
            raise ValueError(f"bandwidth must be >= 1 bit, got {bandwidth_bits}")
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = strict_bandwidth
        self._seed = seed if seed is not None else 0

    # ------------------------------------------------------------------
    def node_rng(self, node: NodeId) -> random.Random:
        """Deterministic per-node random generator.

        Seeded from a CRC of the network seed and the node identifier so
        that executions are reproducible across processes (Python's built-in
        ``hash`` of strings is randomised per process).
        """
        digest = zlib.crc32(f"{self._seed}|{node!r}".encode("utf-8"))
        return random.Random(digest)

    def default_max_rounds(self) -> int:
        """A generous round cap used when the caller does not provide one."""
        return DEFAULT_MAX_ROUND_FACTOR * (self.num_nodes + 2)

    # ------------------------------------------------------------------
    def run(
        self,
        factory: AlgorithmFactory,
        max_rounds: Optional[int] = None,
        exact_rounds: Optional[int] = None,
        record_traffic: bool = False,
    ) -> ExecutionResult:
        """Run one distributed algorithm to completion.

        Parameters
        ----------
        factory:
            Called as ``factory(node_id, network)`` to create the per-node
            state machine.
        max_rounds:
            Abort with :class:`RoundLimitExceededError` if the algorithm has
            not finished after this many rounds.
        exact_rounds:
            When given, run exactly this many rounds regardless of the
            nodes' ``finished`` flags (used for fixed-schedule procedures
            such as the Figure-2 Evaluation, whose duration is known to all
            nodes up-front).
        record_traffic:
            When true, the result carries a per-message traffic log of
            ``(round, sender, receiver, bits)`` tuples.  The two-party
            reduction of Theorem 10 uses it to measure how many bits cross
            the cut of a gadget graph in each round.

        Returns
        -------
        ExecutionResult
            Per-node results (``algorithm.result()``) and execution metrics.
        """
        if max_rounds is None:
            max_rounds = self.default_max_rounds()

        algorithms: Dict[NodeId, NodeAlgorithm] = {
            node: factory(node, self) for node in self.graph.nodes()
        }
        inboxes: Dict[NodeId, Inbox] = {node: {} for node in algorithms}
        metrics = ExecutionMetrics(bandwidth_limit_bits=self.bandwidth_bits)
        traffic_log: Optional[list] = [] if record_traffic else None

        round_number = 0
        while True:
            if exact_rounds is not None and round_number >= exact_rounds:
                break
            if exact_rounds is None and round_number > 0:
                all_finished = all(alg.finished for alg in algorithms.values())
                in_flight = any(inbox for inbox in inboxes.values())
                if all_finished and not in_flight:
                    break
            if round_number >= max_rounds:
                raise RoundLimitExceededError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )

            next_inboxes: Dict[NodeId, Inbox] = {node: {} for node in algorithms}
            any_message = False
            for node, algorithm in algorithms.items():
                outbox = algorithm.on_round(round_number, inboxes[node]) or {}
                for target, payload in outbox.items():
                    if not self.graph.has_edge(node, target):
                        raise ProtocolError(
                            f"node {node!r} tried to send to non-neighbour {target!r}"
                        )
                    size = message_size_bits(payload)
                    metrics.messages += 1
                    metrics.total_bits += size
                    metrics.max_edge_bits_per_round = max(
                        metrics.max_edge_bits_per_round, size
                    )
                    if size > self.bandwidth_bits:
                        metrics.bandwidth_violations += 1
                        if self.strict_bandwidth:
                            raise BandwidthExceededError(
                                f"round {round_number}: node {node!r} sent "
                                f"{size} bits to {target!r} "
                                f"(budget {self.bandwidth_bits} bits)"
                            )
                    if traffic_log is not None:
                        traffic_log.append((round_number, node, target, size))
                    next_inboxes[target][node] = payload
                    any_message = True
                memory = algorithm.memory_bits()
                if memory is not None:
                    metrics.max_node_memory_bits = max(
                        metrics.max_node_memory_bits, memory
                    )

            round_number += 1
            inboxes = next_inboxes

            if exact_rounds is None and not any_message:
                # No message in flight: if everyone is finished we stop at
                # the top of the next iteration; if nobody will ever send
                # again but some node forgot to finish, the max_rounds guard
                # catches it.  We additionally stop early when every node is
                # finished to avoid spinning.
                if all(alg.finished for alg in algorithms.values()):
                    break

        metrics.rounds = round_number
        results = {node: algorithm.result() for node, algorithm in algorithms.items()}
        return ExecutionResult(results=results, metrics=metrics, traffic=traffic_log)
