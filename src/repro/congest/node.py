"""Per-node algorithm interface for the CONGEST simulator.

A distributed algorithm is written as a subclass of :class:`NodeAlgorithm`.
The network instantiates one object per node (via a factory), then drives
all of them in lock-step rounds:

* at round 0 every node's :meth:`NodeAlgorithm.on_round` is called with an
  empty inbox -- this is where initiators send their first messages;
* at round ``t >= 1`` it is called with the messages that the neighbours
  sent at round ``t - 1``;
* the return value is a mapping ``{neighbour_id: payload}`` of messages to
  send this round (an empty mapping or ``None`` sends nothing);
* a node signals completion by setting ``self.finished = True``; the network
  stops once every node has finished and no message is in flight.

Only *local* information is available to a node: its identifier, the
identifiers of its neighbours, the number of nodes ``n``, and whatever it
learns from messages.  This mirrors the knowledge assumption of Section 2.1
of the paper.

Self-wakes.  Under the event-driven :class:`repro.engine.SparseScheduler`
a node's ``on_round`` is only called when its inbox is non-empty (plus once
at round 0).  Algorithms that need to act in a round *without* having
received anything -- draining an internal queue, starting a wave at a
prescribed round -- declare it with :meth:`NodeAlgorithm.wake_next_round`
or :meth:`NodeAlgorithm.wake_at`.  Under the dense scheduler both are
no-ops, so calling them is always safe.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import NodeId

Outbox = Dict[NodeId, Any]
Inbox = Dict[NodeId, Any]


class NodeAlgorithm:
    """Base class for the per-node state machine of a distributed algorithm.

    Subclasses implement :meth:`on_round` and usually :meth:`result`;
    long-lived local variables are ordinary instance attributes.

    Parameters
    ----------
    node_id:
        This node's identifier.
    neighbors:
        Identifiers of adjacent nodes (the node's local view of the graph).
    num_nodes:
        The number ``n`` of nodes in the network, known to every node.
    rng:
        A node-local pseudo-random generator (seeded deterministically by the
        network so executions are reproducible).
    """

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        num_nodes: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node_id = node_id
        self.neighbors: List[NodeId] = list(neighbors)
        self.num_nodes = num_nodes
        self.rng = rng if rng is not None else random.Random(0)
        self.finished = False
        self._wake_requests: List[Optional[int]] = []

    # ------------------------------------------------------------------
    # Hooks implemented by concrete algorithms
    # ------------------------------------------------------------------
    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        """Process the inbox of this round and return messages to send.

        ``round_number`` starts at 0.  ``inbox`` maps a neighbour identifier
        to the payload it sent in the previous round (absent if it sent
        nothing).  Return a mapping ``{neighbour: payload}`` or ``None``.

        The inbox mapping is owned by the engine and recycled across
        rounds, so it is only valid for the duration of this call: an
        algorithm that needs the contents later must copy them
        (``dict(inbox)``), and must never place the inbox object itself
        (directly or nested) inside an outgoing payload -- send a copy.
        The payloads *received* through the inbox are untouched.
        """
        raise NotImplementedError

    def result(self) -> Any:
        """The node's local output once the algorithm has finished."""
        return None

    def memory_bits(self) -> Optional[int]:
        """Optional estimate of the node's current working memory in bits.

        Algorithms that care about the paper's memory bounds (e.g. the
        Figure-2 Evaluation procedure, which must run in ``O(log n)`` bits
        per node) override this; returning ``None`` opts out of accounting.
        """
        return None

    # ------------------------------------------------------------------
    # Self-wake API (event-driven scheduling)
    # ------------------------------------------------------------------
    def wake_next_round(self) -> None:
        """Request that ``on_round`` be called next round even if the inbox
        is empty.

        The event-driven :class:`repro.engine.SparseScheduler` only runs
        nodes with a non-empty inbox, so an algorithm that keeps internal
        work queued between rounds must declare it.  Under the dense
        scheduler (every node runs every round) this is a no-op, so the
        call is always safe.

        Example -- a node draining a local queue one message per round::

            def on_round(self, round_number, inbox):
                self.queue.extend(inbox.values())
                if not self.queue:
                    return {}
                item = self.queue.pop(0)
                if self.queue:            # more to drain next round, with or
                    self.wake_next_round()  # without new incoming messages
                return self.broadcast(item)
        """
        self._wake_requests.append(None)

    def wake_at(self, round_number: int) -> None:
        """Request that ``on_round`` be called at the absolute round
        ``round_number`` even if the inbox is empty then.

        Used by timer-driven algorithms whose schedule is known up-front,
        e.g. a Figure-2 wave source that must start its wave at round
        ``2 * tau'``; may be called from ``__init__`` (before round 0).
        Requests for rounds that have already passed are clamped to the
        next round.  A no-op under the dense scheduler.
        """
        self._wake_requests.append(int(round_number))

    def consume_wake_requests(self) -> List[Optional[int]]:
        """Drain and return pending wake requests (called by the engine).

        Entries are ``None`` for :meth:`wake_next_round` or an absolute
        round number for :meth:`wake_at`.
        """
        requests = getattr(self, "_wake_requests", None)
        if not requests:
            return []
        self._wake_requests = []
        return requests

    # ------------------------------------------------------------------
    # Retry/backoff helpers (graceful degradation under faults)
    # ------------------------------------------------------------------
    def wake_after(self, round_number: int, delay: int) -> int:
        """Schedule a self-wake ``delay`` rounds after ``round_number``.

        Returns the absolute target round, which the caller should store
        and compare against ``round_number`` in later ``on_round`` calls:
        the dense scheduler polls every node every round, the sparse one
        wakes the node exactly at the target, and checking ``round_number
        >= target`` makes both behave identically.  ``delay`` is clamped
        to at least 1 (a node cannot re-run within its own round).
        """
        target = round_number + max(1, int(delay))
        self.wake_at(target)
        return target

    def retry_backoff(
        self,
        round_number: int,
        attempt: int,
        base: int = 1,
        factor: int = 2,
        cap: int = 64,
    ) -> int:
        """Schedule a retry wake with exponential backoff.

        Attempt 0 wakes after ``base`` rounds, attempt 1 after ``base *
        factor`` rounds, and so on, capped at ``cap`` rounds.  Returns
        the absolute round of the scheduled wake (see :meth:`wake_after`).
        Used by fault-tolerant algorithms to re-request messages that a
        lossy network may have dropped, without flooding every round.
        """
        delay = min(cap, base * factor ** max(0, attempt))
        return self.wake_after(round_number, delay)

    # ------------------------------------------------------------------
    # Conveniences for subclasses
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any) -> Outbox:
        """An outbox that sends ``payload`` to every neighbour."""
        return {neighbor: payload for neighbor in self.neighbors}

    def send_to(self, neighbor: NodeId, payload: Any) -> Outbox:
        """An outbox that sends ``payload`` to a single neighbour."""
        if neighbor not in self.neighbors:
            raise ValueError(
                f"node {self.node_id!r} has no neighbour {neighbor!r}"
            )
        return {neighbor: payload}
