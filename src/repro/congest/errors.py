"""Exception types raised by the CONGEST simulator."""

from __future__ import annotations

from typing import Optional


class CongestSimulationError(Exception):
    """Base class for all simulator errors."""


class BandwidthExceededError(CongestSimulationError):
    """A node attempted to send more bits over one edge than the bandwidth
    allows in a single round (only raised when the network runs in strict
    mode)."""


class RoundLimitExceededError(CongestSimulationError):
    """The algorithm did not terminate within the allowed number of rounds.

    Carries structured progress data (when built via :meth:`for_run`) so
    that timeout-under-faults failures are diagnosable: the sweep layer
    reads :attr:`rounds_completed` into its failure records instead of
    parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        max_rounds: Optional[int] = None,
        rounds_completed: Optional[int] = None,
        messages_sent: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.max_rounds = max_rounds
        self.rounds_completed = rounds_completed
        self.messages_sent = messages_sent

    @classmethod
    def for_run(
        cls, max_rounds: int, rounds_completed: int, messages_sent: int
    ) -> "RoundLimitExceededError":
        """The round-cap abort of the engine's run loops.

        One construction site for every loop, so the (enriched) message
        is identical across the dense, sparse, vector and fault-aware
        paths and states how far the execution got before the cap.
        """
        return cls(
            f"algorithm did not terminate within {max_rounds} rounds "
            f"({rounds_completed} round(s) completed, "
            f"{messages_sent} message(s) sent)",
            max_rounds=max_rounds,
            rounds_completed=rounds_completed,
            messages_sent=messages_sent,
        )


class ProtocolError(CongestSimulationError):
    """An algorithm violated the simulator's contract, e.g. sent a message
    to a node that is not a neighbour."""
