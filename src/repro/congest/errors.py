"""Exception types raised by the CONGEST simulator."""

from __future__ import annotations


class CongestSimulationError(Exception):
    """Base class for all simulator errors."""


class BandwidthExceededError(CongestSimulationError):
    """A node attempted to send more bits over one edge than the bandwidth
    allows in a single round (only raised when the network runs in strict
    mode)."""


class RoundLimitExceededError(CongestSimulationError):
    """The algorithm did not terminate within the allowed number of rounds."""


class ProtocolError(CongestSimulationError):
    """An algorithm violated the simulator's contract, e.g. sent a message
    to a node that is not a neighbour."""
