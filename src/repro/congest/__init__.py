"""A round-synchronous CONGEST-model network simulator.

The CONGEST model (Section 2.1 of the paper): the network is an undirected
graph ``G = (V, E)``; execution proceeds in synchronous rounds; in every
round each node may send one message of at most ``O(log n)`` bits to each of
its neighbours; nodes know ``n`` and their own incident edges, and have
distinct identifiers.

The simulator enforces exactly that interface:

* algorithms are written as per-node state machines
  (:class:`repro.congest.node.NodeAlgorithm`) that receive, every round, the
  messages their neighbours sent in the previous round and return the
  messages to send in the current round;
* the network (:class:`repro.congest.network.Network`) delivers messages,
  counts rounds, measures message sizes in bits and enforces (or records
  violations of) the per-edge bandwidth budget;
* :class:`repro.congest.metrics.ExecutionMetrics` aggregates rounds,
  messages, bits and per-node memory so the benchmark harnesses can compare
  measured round counts against the paper's formulas.
"""

from repro.congest.errors import (
    BandwidthExceededError,
    CongestSimulationError,
    ProtocolError,
    RoundLimitExceededError,
)
from repro.congest.message import message_size_bits
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import ExecutionResult, Network
from repro.congest.node import NodeAlgorithm

__all__ = [
    "Network",
    "NodeAlgorithm",
    "ExecutionResult",
    "ExecutionMetrics",
    "message_size_bits",
    "CongestSimulationError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ProtocolError",
]
