"""Message size accounting.

The CONGEST model measures communication in *bits per edge per round*.  The
simulator lets algorithms exchange ordinary Python values (ints, tuples,
short strings, ...) and charges them a bit size computed by
:func:`message_size_bits`.  The encoding is deliberately simple and
conservative -- it only needs to be *consistent*, so that a message carrying
a constant number of node identifiers and counters costs ``Theta(log n)``
bits, which is what the model's bandwidth budget is expressed in.
"""

from __future__ import annotations

from typing import Any


def _int_bits(value: int) -> int:
    """Bits needed to encode ``value`` (two's-complement-ish, at least 1)."""
    if value == 0:
        return 1
    magnitude_bits = abs(value).bit_length()
    sign_bit = 1 if value < 0 else 0
    return magnitude_bits + sign_bit


def message_size_bits(payload: Any) -> int:
    """Return the size, in bits, charged for ``payload``.

    Supported payloads: ``None`` (1 bit -- the message still exists),
    ``bool`` (1), ``int`` (bit length), ``float`` (64), ``str`` (8 per
    character), and arbitrarily nested tuples / lists / dicts / sets /
    frozensets of supported payloads (2 bits of framing per element).

    Raises ``TypeError`` for unsupported payload types so that algorithm
    bugs (e.g. accidentally sending a whole adjacency list object) surface
    immediately instead of silently costing 0 bits.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return _int_bits(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (tuple, list, set, frozenset)):
        return max(1, sum(2 + message_size_bits(item) for item in payload))
    if isinstance(payload, dict):
        return max(
            1,
            sum(
                2 + message_size_bits(key) + message_size_bits(value)
                for key, value in payload.items()
            ),
        )
    raise TypeError(
        f"unsupported message payload type {type(payload).__name__!r}; "
        "send ints, strings, or nested tuples/lists/dicts of those"
    )
