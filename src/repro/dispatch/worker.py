"""The dispatch worker: execute leased shards, persist a local store shard.

``repro worker join HOST:PORT --shard-dir DIR`` runs this loop: connect
to a :class:`repro.dispatch.coordinator.DispatchCoordinator`, register
(reporting a ``capabilities`` probe: cpu count, numpy-tier availability
and a micro-benchmark throughput score the coordinator uses to weight
lease sizes), heartbeat, and for every leased shard run the exact
per-cell body of a local sweep
(:func:`repro.analysis.sweep._sweep_one_grid_cell`) with the grid's
engine / schedule-backend / compute-tier / fault-model selections
applied as (restored) process defaults -- the same re-application the
BatchRunner pool initializer performs, so a remote cell computes the
byte-identical record a serial run would.

Every completed cell is appended to the worker's **own** JSONL store
shard (``DIR/shard-<signature>-<worker_id>.jsonl``) under the store's
advisory writer lock before the result frame is sent, and cells whose
task keys are already in the shard (a requeue after a reconnect) are
replayed from disk instead of recomputed.  Shards are therefore durable
and idempotent: kill a worker mid-shard and either the coordinator
requeues the remainder elsewhere, or the restarted worker resumes its own
shard file -- the provenance-aware merge
(:func:`repro.store.merge.merge_shards`) deduplicates whichever way the
race went.  Each lease's completion footer records the worker id, shard
id and cells/sec throughput for ``repro merge --stats``.

Between cells the worker polls its connection for ``trim`` frames -- the
adaptive coordinator's work stealing: trimmed indices were re-leased to
an idle worker and are skipped here.  A late trim merely means both
workers computed the cell; the records are identical by construction and
dedup'd downstream.  Heartbeats carry the wall times of recently
completed cells, calibrating the coordinator's cost model online.

The connection drops when the coordinator stops or dies; with
``once=True`` the worker then exits (the CI smoke mode); with
``supervise=True`` it instead reconnects forever with capped exponential
backoff -- surviving coordinator restarts and replaying its shard store
on rejoin -- until ``stop_event`` is set; otherwise it retries the
connect for ``connect_wait`` seconds before giving up.

``REPRO_DISPATCH_THROTTLE`` (seconds, float) sleeps after every freshly
computed cell -- the deterministic slow-worker hook the straggler
benchmark and the CI heterogeneous smoke use to manufacture stragglers.
The registration micro-benchmark deliberately ignores it: the hook
models an *unexpected* runtime straggler whose capabilities looked
normal, the case stealing and speculation exist to absorb (the cost
model still learns the true cell times from heartbeat telemetry).
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
import platform
import re
import select
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.dispatch.protocol import (
    DispatchError,
    FramedSocket,
    FrameError,
    parse_address,
)

#: Worker ids become shard filename components; same shape as the store's
#: tenant names so an id can never escape the shard directory.
_WORKER_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: How long a worker waits on a shard store's advisory writer lock.  A
#: worker only ever contends with its own previous (crashed) incarnation,
#: whose lock the stale-holder break clears almost immediately.
_LOCK_WAIT_SECONDS = 15.0

#: Environment hook: seconds slept after each freshly computed cell.
THROTTLE_ENV = "REPRO_DISPATCH_THROTTLE"

#: Supervisor reconnect backoff: initial delay and cap (seconds).
_BACKOFF_INITIAL = 0.5
_BACKOFF_CAP = 15.0

#: Cap on timing observations shipped per heartbeat frame.
_TIMINGS_PER_BEAT = 256


def default_worker_id() -> str:
    """A host- and pid-derived worker id, sanitised for filenames."""
    raw = f"{platform.node()}-{os.getpid()}"
    cleaned = re.sub(r"[^A-Za-z0-9_.-]", "-", raw).lstrip(".-") or "worker"
    return cleaned[:64]


def validate_worker_id(worker_id: str) -> str:
    """Reject worker ids that are not safe shard-filename components."""
    if not _WORKER_ID_PATTERN.match(worker_id):
        raise ValueError(
            f"invalid worker id {worker_id!r}: use letters, digits, "
            "'_', '-' or '.' (max 64 chars, no leading '.')"
        )
    return worker_id


def shard_store_path(shard_dir: str, signature: str, worker_id: str) -> str:
    """Where a worker persists its cells for one grid."""
    return os.path.join(shard_dir, f"shard-{signature}-{worker_id}.jsonl")


def resolve_throttle(throttle: Optional[float] = None) -> float:
    """The effective per-cell throttle: explicit arg, else the env hook."""
    if throttle is None:
        raw = os.environ.get(THROTTLE_ENV, "").strip()
        if raw:
            try:
                throttle = float(raw)
            except ValueError:
                throttle = None
    return max(0.0, throttle or 0.0)


def probe_capabilities(throttle: Optional[float] = None) -> Dict[str, Any]:
    """What this worker tells the coordinator about itself at register.

    ``score`` is work units per second from a short fixed arithmetic
    micro-benchmark -- a *hardware* throughput probe feeding the
    coordinator's capability-weighted lease sizing; only ratios between
    workers matter.  The throttle hook is deliberately NOT part of the
    timed window: it models an **unexpected** runtime straggler (a
    worker whose capabilities looked normal but whose cells run slow --
    contended box, thermal limit), which is precisely the case work
    stealing and speculative re-execution exist to absorb.  The
    effective throttle is still *reported* (diagnostic only; the
    coordinator weights by ``score`` alone).
    """
    throttle = resolve_throttle(throttle)
    rounds = 3
    started = time.perf_counter()
    sink = 0
    for _ in range(rounds):
        for value in range(20_000):
            sink ^= (value * 2654435761) & 0xFFFFFFFF
    elapsed = max(time.perf_counter() - started, 1e-9)
    del sink
    return {
        "cpus": os.cpu_count() or 1,
        "numpy": importlib.util.find_spec("numpy") is not None,
        "score": round(rounds / elapsed, 6),
        "throttle": throttle,
    }


@contextlib.contextmanager
def _restored(setter, value):
    """Apply a process-default selection, restoring the previous one."""
    previous = setter(value)
    try:
        yield
    finally:
        setter(previous)


@contextlib.contextmanager
def _grid_environment(description: Dict[str, Any]):
    """The grid's process-default selections, applied and restored.

    The remote twin of the BatchRunner pool initializer
    (:func:`repro.runner.batch._worker_initializer`): the client captured
    its effective engine / backend / tier / fault-model defaults into the
    grid description, and the worker re-applies them around shard
    execution so cells compute identical records on any host.
    """
    from repro.engine import set_default_engine
    from repro.faults import FaultModel, set_default_fault_model
    from repro.quantum.backend import set_default_schedule_backend
    from repro.tier import set_default_tier

    with contextlib.ExitStack() as stack:
        stack.enter_context(
            _restored(set_default_engine, description["engine"])
        )
        stack.enter_context(
            _restored(set_default_schedule_backend, description["backend"])
        )
        stack.enter_context(_restored(set_default_tier, description["tier"]))
        fault = description.get("fault")
        if fault is not None:
            stack.enter_context(
                _restored(set_default_fault_model, FaultModel(**fault))
            )
        yield


class _GridContext:
    """A grid description resolved into executable objects, once."""

    def __init__(self, description: Dict[str, Any]) -> None:
        from repro.runner import (
            resolve_algorithms,
            sweep_algorithm_for_problem,
        )
        from repro.store.records import spec_from_dict

        self.description = description
        self.specs = [spec_from_dict(item) for item in description["specs"]]
        self.names = list(description["algorithms"])
        self.tasks = [tuple(item) for item in description["tasks"]]
        self.base_seed = int(description["base_seed"])
        self.signature = str(description["signature"])
        self.kind = str(description.get("kind", "sweep"))
        if self.kind == "quantum":
            self.table = dict(
                sweep_algorithm_for_problem(problem) for problem in self.names
            )
        else:
            self.table = resolve_algorithms(self.names)

    def cell(self, index: int):
        """The ``(spec, name)`` task of one grid index."""
        spec_index, name_index = self.tasks[index]
        return self.specs[spec_index], self.names[name_index]


class _Telemetry:
    """Per-cell wall times queued for the heartbeat thread to ship."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: List[Dict[str, Any]] = []

    def record(self, algorithm: str, num_nodes: int, kind: str,
               seconds: float) -> None:
        with self._lock:
            self._items.append({
                "algorithm": algorithm,
                "num_nodes": num_nodes,
                "kind": kind,
                "seconds": round(seconds, 9),
            })

    def drain(self, limit: int = _TIMINGS_PER_BEAT) -> List[Dict[str, Any]]:
        with self._lock:
            taken, self._items = self._items[:limit], self._items[limit:]
            return taken


def _poll_frames(conn: FramedSocket) -> List[Dict[str, Any]]:
    """Frames already waiting on the connection, without blocking.

    The shard-execution loop calls this between cells so the adaptive
    coordinator's ``trim`` frames (work stealing) land mid-shard; any
    other frame types surfaced here are deferred back to the main serve
    loop untouched.
    """
    frames: List[Dict[str, Any]] = []
    while True:
        readable, _, _ = select.select([conn.sock], [], [], 0.0)
        if not readable:
            return frames
        frame = conn.recv()
        if frame is None:
            raise OSError("dispatch connection closed mid-shard")
        frames.append(frame)


def _execute_shard(
    conn: FramedSocket,
    grid: _GridContext,
    frame: Dict[str, Any],
    shard_dir: str,
    worker_id: str,
    stats: Dict[str, int],
    telemetry: _Telemetry,
    throttle: float,
) -> Tuple[int, List[Dict[str, Any]]]:
    """Run one leased shard.

    Returns ``(cells streamed back, frames deferred to the serve loop)``
    -- frames other than ``trim`` that arrived while polling mid-shard.
    """
    from repro.analysis.sweep import _sweep_one_grid_cell, sweep_task_key
    from repro.faults import get_default_fault_model
    from repro.store import ExperimentStore
    from repro.store.records import record_to_dict

    shard_id = frame["shard"]
    indices = [int(index) for index in frame["indices"]]
    trimmed: set = set()
    deferred: List[Dict[str, Any]] = []

    def absorb(frames: List[Dict[str, Any]]) -> None:
        for item in frames:
            if (
                item.get("type") == "trim"
                and item.get("shard") == shard_id
            ):
                trimmed.update(int(index) for index in item.get("indices", ()))
            else:
                deferred.append(item)

    store = ExperimentStore(
        shard_store_path(shard_dir, grid.signature, worker_id)
    )
    started = time.perf_counter()
    streamed = 0
    fresh = 0
    with _grid_environment(grid.description):
        fault = get_default_fault_model()
        with store.acquire_writer(timeout=_LOCK_WAIT_SECONDS):
            completed = store.begin_sweep(
                specs=grid.specs,
                algorithms=grid.names,
                base_seed=grid.base_seed,
                signature=grid.signature,
                jobs=1,
                resume=store.exists(),
            )
            for index in indices:
                absorb(_poll_frames(conn))
                if index in trimmed:
                    stats["trimmed"] += 1
                    continue
                spec, name = grid.cell(index)
                key = sweep_task_key(spec, name, grid.base_seed, fault)
                record = completed.get(key)
                if record is None:
                    cell_started = time.perf_counter()
                    record = _sweep_one_grid_cell(
                        (grid.table, grid.base_seed), (spec, name)
                    )
                    store.append_record(key, index, record)
                    if throttle:
                        time.sleep(throttle)
                    telemetry.record(
                        name,
                        spec.num_nodes,
                        grid.kind,
                        time.perf_counter() - cell_started,
                    )
                    fresh += 1
                else:
                    stats["replayed"] += 1
                conn.send({
                    "type": "cell",
                    "grid": frame["grid"],
                    "shard": shard_id,
                    "index": index,
                    "key": key,
                    "record": record_to_dict(record),
                })
                streamed += 1
            wall = time.perf_counter() - started
            store.finish_sweep(
                wall_seconds=wall,
                total_records=streamed,
                resumed_records=streamed - fresh,
                extra={
                    "worker": worker_id,
                    "shard": str(shard_id),
                    "cells": streamed,
                    "fresh": fresh,
                    "cells_per_second": round(streamed / wall, 6)
                    if wall > 0 else 0.0,
                },
            )
    return streamed, deferred


def _serve_connection(
    conn: FramedSocket,
    shard_dir: str,
    worker_id: str,
    stats: Dict[str, int],
    telemetry: _Telemetry,
    throttle: float,
) -> str:
    """Process frames on one live connection.

    Returns ``"shutdown"`` (coordinator said goodbye) or ``"lost"`` (the
    connection dropped, reconnect may help).
    """
    grids: Dict[str, _GridContext] = {}
    backlog: List[Dict[str, Any]] = []
    while True:
        if backlog:
            frame = backlog.pop(0)
        else:
            try:
                frame = conn.recv()
            except (FrameError, OSError):
                return "lost"
            if frame is None:
                return "lost"
        kind = frame.get("type")
        if kind == "shutdown":
            return "shutdown"
        if kind == "trim":
            continue  # stale: its shard already finished here
        if kind == "grid":
            try:
                grids[str(frame["grid"])] = _GridContext(frame["description"])
            except Exception as error:
                _report_failure(conn, frame, "grid", error)
            continue
        if kind == "shard":
            grid = grids.get(str(frame.get("grid")))
            if grid is None:
                _report_failure(
                    conn, frame, "shard",
                    DispatchError("shard for an unknown grid"),
                )
                continue
            try:
                streamed, deferred = _execute_shard(
                    conn, grid, frame, shard_dir, worker_id,
                    stats, telemetry, throttle,
                )
                stats["cells"] += streamed
                stats["shards"] += 1
                backlog.extend(deferred)
                conn.send({
                    "type": "shard_done",
                    "grid": frame["grid"],
                    "shard": frame["shard"],
                })
            except OSError:
                return "lost"
            except Exception as error:  # kernel bug: surface, keep serving
                _report_failure(conn, frame, "shard", error)


def _report_failure(
    conn: FramedSocket, frame: Dict[str, Any], what: str, error: Exception
) -> None:
    message = "".join(
        traceback.format_exception_only(type(error), error)
    ).strip()
    try:
        conn.send({
            "type": "shard_failed",
            "grid": frame.get("grid"),
            "shard": frame.get("shard"),
            "message": f"{what} failed on this worker: {message}",
        })
    except OSError:
        pass


def run_worker(
    host: str,
    port: int,
    shard_dir: str,
    worker_id: Optional[str] = None,
    once: bool = False,
    connect_wait: float = 30.0,
    heartbeat_interval: float = 2.0,
    poll: float = 0.25,
    supervise: bool = False,
    throttle: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
) -> Dict[str, int]:
    """Join a coordinator and serve shards until it shuts down.

    Returns ``{"cells", "shards", "replayed", "trimmed", "sessions"}``
    counters.  With ``once`` the worker exits as soon as its connection
    ends; with ``supervise`` it never gives up -- connection drops *and*
    clean coordinator shutdowns alike trigger a reconnect with capped
    exponential backoff (0.5s doubling to 15s, reset after each
    successful registration), so the worker rides out coordinator
    restarts and replays its shard store on rejoin; it returns only when
    ``stop_event`` is set.  Otherwise the worker keeps retrying the
    connect for ``connect_wait`` seconds after each drop and raises
    :class:`DispatchError` when the coordinator stays unreachable.
    """
    if once and supervise:
        raise ValueError("once and supervise are mutually exclusive")
    worker_id = validate_worker_id(worker_id or default_worker_id())
    os.makedirs(shard_dir, exist_ok=True)
    throttle = resolve_throttle(throttle)
    capabilities = probe_capabilities(throttle)
    stop_event = stop_event or threading.Event()
    stats = {
        "cells": 0, "shards": 0, "replayed": 0, "trimmed": 0, "sessions": 0,
    }
    telemetry = _Telemetry()
    backoff = _BACKOFF_INITIAL
    while True:
        deadline = time.monotonic() + connect_wait
        sock = None
        while sock is None:
            if supervise and stop_event.is_set():
                return stats
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
            except OSError:
                if supervise:
                    if stop_event.wait(backoff):
                        return stats
                    backoff = min(backoff * 2.0, _BACKOFF_CAP)
                    continue
                if time.monotonic() >= deadline:
                    raise DispatchError(
                        f"could not reach dispatch coordinator at "
                        f"{host}:{port} within {connect_wait:g}s"
                    )
                time.sleep(poll)
        sock.settimeout(None)
        conn = FramedSocket(sock)
        stop_heartbeat = threading.Event()

        def _beat(conn=conn, stop=stop_heartbeat):
            while not stop.wait(heartbeat_interval):
                frame: Dict[str, Any] = {"type": "heartbeat"}
                timings = telemetry.drain()
                if timings:
                    frame["timings"] = timings
                try:
                    conn.send(frame)
                except OSError:
                    return

        try:
            conn.send({
                "type": "register",
                "worker": worker_id,
                "pid": os.getpid(),
                "host": platform.node(),
                "capabilities": capabilities,
            })
        except OSError:
            conn.close()
            continue
        backoff = _BACKOFF_INITIAL  # registered: a restart starts fresh
        heartbeat = threading.Thread(
            target=_beat, name="dispatch-heartbeat", daemon=True
        )
        heartbeat.start()
        try:
            outcome = _serve_connection(
                conn, shard_dir, worker_id, stats, telemetry, throttle
            )
        finally:
            stop_heartbeat.set()
            conn.close()
            heartbeat.join(timeout=heartbeat_interval + 1.0)
        stats["sessions"] += 1
        if supervise:
            if stop_event.is_set():
                return stats
            if stop_event.wait(backoff):
                return stats
            backoff = min(backoff * 2.0, _BACKOFF_CAP)
            continue
        if outcome == "shutdown" or once:
            return stats


def main(argv=None) -> int:
    """``python -m repro.dispatch.worker`` -- the bare worker entry point.

    The CLI front door is ``repro worker join``; this module entry exists
    so benchmark harnesses and CI can spawn workers without the argparse
    tree import cost.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.dispatch.worker",
        description="Join a dispatch coordinator and execute sweep shards.",
    )
    parser.add_argument("address", help="coordinator HOST:PORT")
    parser.add_argument(
        "--shard-dir", required=True,
        help="directory for this worker's JSONL store shards",
    )
    parser.add_argument(
        "--name", default=None, help="worker id (default: host-pid)"
    )
    parser.add_argument(
        "--once", action="store_true",
        help="exit when the coordinator connection ends (no reconnect)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="never give up: reconnect with capped exponential backoff "
        "across coordinator restarts (mutually exclusive with --once)",
    )
    parser.add_argument(
        "--connect-wait", type=float, default=30.0,
        help="seconds to keep retrying the coordinator connect",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=2.0,
        help="seconds between heartbeat frames",
    )
    args = parser.parse_args(argv)
    try:
        host, port = parse_address(args.address)
        stats = run_worker(
            host,
            port,
            shard_dir=args.shard_dir,
            worker_id=args.name,
            once=args.once,
            connect_wait=args.connect_wait,
            heartbeat_interval=args.heartbeat,
            supervise=args.supervise,
        )
    except (ValueError, DispatchError) as error:
        print(f"error: {error}")
        return 2
    print(
        f"worker done: {stats['cells']} cell(s) over {stats['shards']} shard(s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
