"""The dispatch worker: execute leased shards, persist a local store shard.

``repro worker join HOST:PORT --shard-dir DIR`` runs this loop: connect
to a :class:`repro.dispatch.coordinator.DispatchCoordinator`, register,
heartbeat, and for every leased shard run the exact per-cell body of a
local sweep (:func:`repro.analysis.sweep._sweep_one_grid_cell`) with the
grid's engine / schedule-backend / compute-tier / fault-model selections
applied as (restored) process defaults -- the same re-application the
BatchRunner pool initializer performs, so a remote cell computes the
byte-identical record a serial run would.

Every completed cell is appended to the worker's **own** JSONL store
shard (``DIR/shard-<signature>-<worker_id>.jsonl``) under the store's
advisory writer lock before the result frame is sent, and cells whose
task keys are already in the shard (a requeue after a reconnect) are
replayed from disk instead of recomputed.  Shards are therefore durable
and idempotent: kill a worker mid-shard and either the coordinator
requeues the remainder elsewhere, or the restarted worker resumes its own
shard file -- the provenance-aware merge
(:func:`repro.store.merge.merge_shards`) deduplicates whichever way the
race went.

The connection drops when the coordinator stops or dies; with
``once=True`` the worker then exits (the CI smoke mode), otherwise it
retries the connect for ``connect_wait`` seconds before giving up.
"""

from __future__ import annotations

import contextlib
import os
import platform
import re
import socket
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.dispatch.protocol import (
    DispatchError,
    FramedSocket,
    FrameError,
    parse_address,
)

#: Worker ids become shard filename components; same shape as the store's
#: tenant names so an id can never escape the shard directory.
_WORKER_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: How long a worker waits on a shard store's advisory writer lock.  A
#: worker only ever contends with its own previous (crashed) incarnation,
#: whose lock the stale-holder break clears almost immediately.
_LOCK_WAIT_SECONDS = 15.0


def default_worker_id() -> str:
    """A host- and pid-derived worker id, sanitised for filenames."""
    raw = f"{platform.node()}-{os.getpid()}"
    cleaned = re.sub(r"[^A-Za-z0-9_.-]", "-", raw).lstrip(".-") or "worker"
    return cleaned[:64]


def validate_worker_id(worker_id: str) -> str:
    """Reject worker ids that are not safe shard-filename components."""
    if not _WORKER_ID_PATTERN.match(worker_id):
        raise ValueError(
            f"invalid worker id {worker_id!r}: use letters, digits, "
            "'_', '-' or '.' (max 64 chars, no leading '.')"
        )
    return worker_id


def shard_store_path(shard_dir: str, signature: str, worker_id: str) -> str:
    """Where a worker persists its cells for one grid."""
    return os.path.join(shard_dir, f"shard-{signature}-{worker_id}.jsonl")


@contextlib.contextmanager
def _restored(setter, value):
    """Apply a process-default selection, restoring the previous one."""
    previous = setter(value)
    try:
        yield
    finally:
        setter(previous)


@contextlib.contextmanager
def _grid_environment(description: Dict[str, Any]):
    """The grid's process-default selections, applied and restored.

    The remote twin of the BatchRunner pool initializer
    (:func:`repro.runner.batch._worker_initializer`): the client captured
    its effective engine / backend / tier / fault-model defaults into the
    grid description, and the worker re-applies them around shard
    execution so cells compute identical records on any host.
    """
    from repro.engine import set_default_engine
    from repro.faults import FaultModel, set_default_fault_model
    from repro.quantum.backend import set_default_schedule_backend
    from repro.tier import set_default_tier

    with contextlib.ExitStack() as stack:
        stack.enter_context(
            _restored(set_default_engine, description["engine"])
        )
        stack.enter_context(
            _restored(set_default_schedule_backend, description["backend"])
        )
        stack.enter_context(_restored(set_default_tier, description["tier"]))
        fault = description.get("fault")
        if fault is not None:
            stack.enter_context(
                _restored(set_default_fault_model, FaultModel(**fault))
            )
        yield


class _GridContext:
    """A grid description resolved into executable objects, once."""

    def __init__(self, description: Dict[str, Any]) -> None:
        from repro.runner import (
            resolve_algorithms,
            sweep_algorithm_for_problem,
        )
        from repro.store.records import spec_from_dict

        self.description = description
        self.specs = [spec_from_dict(item) for item in description["specs"]]
        self.names = list(description["algorithms"])
        self.tasks = [tuple(item) for item in description["tasks"]]
        self.base_seed = int(description["base_seed"])
        self.signature = str(description["signature"])
        if description.get("kind") == "quantum":
            self.table = dict(
                sweep_algorithm_for_problem(problem) for problem in self.names
            )
        else:
            self.table = resolve_algorithms(self.names)

    def cell(self, index: int):
        """The ``(spec, name)`` task of one grid index."""
        spec_index, name_index = self.tasks[index]
        return self.specs[spec_index], self.names[name_index]


def _execute_shard(
    conn: FramedSocket,
    grid: _GridContext,
    frame: Dict[str, Any],
    shard_dir: str,
    worker_id: str,
) -> int:
    """Run one leased shard; returns the number of cells streamed back."""
    from repro.analysis.sweep import _sweep_one_grid_cell, sweep_task_key
    from repro.faults import get_default_fault_model
    from repro.store import ExperimentStore
    from repro.store.records import record_to_dict

    indices = [int(index) for index in frame["indices"]]
    store = ExperimentStore(
        shard_store_path(shard_dir, grid.signature, worker_id)
    )
    started = time.perf_counter()
    streamed = 0
    with _grid_environment(grid.description):
        fault = get_default_fault_model()
        with store.acquire_writer(timeout=_LOCK_WAIT_SECONDS):
            completed = store.begin_sweep(
                specs=grid.specs,
                algorithms=grid.names,
                base_seed=grid.base_seed,
                signature=grid.signature,
                jobs=1,
                resume=store.exists(),
            )
            fresh = 0
            for index in indices:
                spec, name = grid.cell(index)
                key = sweep_task_key(spec, name, grid.base_seed, fault)
                record = completed.get(key)
                if record is None:
                    record = _sweep_one_grid_cell(
                        (grid.table, grid.base_seed), (spec, name)
                    )
                    store.append_record(key, index, record)
                    fresh += 1
                conn.send({
                    "type": "cell",
                    "grid": frame["grid"],
                    "shard": frame["shard"],
                    "index": index,
                    "key": key,
                    "record": record_to_dict(record),
                })
                streamed += 1
            store.finish_sweep(
                wall_seconds=time.perf_counter() - started,
                total_records=len(indices),
                resumed_records=len(indices) - fresh,
            )
    return streamed


def _serve_connection(
    conn: FramedSocket, shard_dir: str, worker_id: str, stats: Dict[str, int]
) -> str:
    """Process frames on one live connection.

    Returns ``"shutdown"`` (coordinator said goodbye) or ``"lost"`` (the
    connection dropped, reconnect may help).
    """
    grids: Dict[str, _GridContext] = {}
    while True:
        try:
            frame = conn.recv()
        except (FrameError, OSError):
            return "lost"
        if frame is None:
            return "lost"
        kind = frame.get("type")
        if kind == "shutdown":
            return "shutdown"
        if kind == "grid":
            try:
                grids[str(frame["grid"])] = _GridContext(frame["description"])
            except Exception as error:
                _report_failure(conn, frame, "grid", error)
            continue
        if kind == "shard":
            grid = grids.get(str(frame.get("grid")))
            if grid is None:
                _report_failure(
                    conn, frame, "shard",
                    DispatchError("shard for an unknown grid"),
                )
                continue
            try:
                stats["cells"] += _execute_shard(
                    conn, grid, frame, shard_dir, worker_id
                )
                stats["shards"] += 1
                conn.send({
                    "type": "shard_done",
                    "grid": frame["grid"],
                    "shard": frame["shard"],
                })
            except OSError:
                return "lost"
            except Exception as error:  # kernel bug: surface, keep serving
                _report_failure(conn, frame, "shard", error)


def _report_failure(
    conn: FramedSocket, frame: Dict[str, Any], what: str, error: Exception
) -> None:
    message = "".join(
        traceback.format_exception_only(type(error), error)
    ).strip()
    try:
        conn.send({
            "type": "shard_failed",
            "grid": frame.get("grid"),
            "shard": frame.get("shard"),
            "message": f"{what} failed on this worker: {message}",
        })
    except OSError:
        pass


def run_worker(
    host: str,
    port: int,
    shard_dir: str,
    worker_id: Optional[str] = None,
    once: bool = False,
    connect_wait: float = 30.0,
    heartbeat_interval: float = 2.0,
    poll: float = 0.25,
) -> Dict[str, int]:
    """Join a coordinator and serve shards until it shuts down.

    Returns ``{"cells": ..., "shards": ...}`` counters.  With ``once``
    the worker exits as soon as its connection ends; otherwise it keeps
    retrying the connect for ``connect_wait`` seconds after each drop and
    raises :class:`DispatchError` when the coordinator stays unreachable.
    """
    worker_id = validate_worker_id(worker_id or default_worker_id())
    os.makedirs(shard_dir, exist_ok=True)
    stats = {"cells": 0, "shards": 0}
    while True:
        deadline = time.monotonic() + connect_wait
        sock = None
        while sock is None:
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
            except OSError:
                if time.monotonic() >= deadline:
                    raise DispatchError(
                        f"could not reach dispatch coordinator at "
                        f"{host}:{port} within {connect_wait:g}s"
                    )
                time.sleep(poll)
        sock.settimeout(None)
        conn = FramedSocket(sock)
        stop_heartbeat = threading.Event()

        def _beat(conn=conn, stop=stop_heartbeat):
            while not stop.wait(heartbeat_interval):
                try:
                    conn.send({"type": "heartbeat"})
                except OSError:
                    return

        try:
            conn.send({
                "type": "register",
                "worker": worker_id,
                "pid": os.getpid(),
                "host": platform.node(),
            })
        except OSError:
            conn.close()
            continue
        heartbeat = threading.Thread(
            target=_beat, name="dispatch-heartbeat", daemon=True
        )
        heartbeat.start()
        try:
            outcome = _serve_connection(conn, shard_dir, worker_id, stats)
        finally:
            stop_heartbeat.set()
            conn.close()
            heartbeat.join(timeout=heartbeat_interval + 1.0)
        if outcome == "shutdown" or once:
            return stats


def main(argv=None) -> int:
    """``python -m repro.dispatch.worker`` -- the bare worker entry point.

    The CLI front door is ``repro worker join``; this module entry exists
    so benchmark harnesses and CI can spawn workers without the argparse
    tree import cost.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.dispatch.worker",
        description="Join a dispatch coordinator and execute sweep shards.",
    )
    parser.add_argument("address", help="coordinator HOST:PORT")
    parser.add_argument(
        "--shard-dir", required=True,
        help="directory for this worker's JSONL store shards",
    )
    parser.add_argument(
        "--name", default=None, help="worker id (default: host-pid)"
    )
    parser.add_argument(
        "--once", action="store_true",
        help="exit when the coordinator connection ends (no reconnect)",
    )
    parser.add_argument(
        "--connect-wait", type=float, default=30.0,
        help="seconds to keep retrying the coordinator connect",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=2.0,
        help="seconds between heartbeat frames",
    )
    args = parser.parse_args(argv)
    try:
        host, port = parse_address(args.address)
        stats = run_worker(
            host,
            port,
            shard_dir=args.shard_dir,
            worker_id=args.name,
            once=args.once,
            connect_wait=args.connect_wait,
            heartbeat_interval=args.heartbeat,
        )
    except (ValueError, DispatchError) as error:
        print(f"error: {error}")
        return 2
    print(
        f"worker done: {stats['cells']} cell(s) over {stats['shards']} shard(s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
