"""Length-prefixed JSON frames: the dispatch coordinator/worker wire format.

The distributed dispatch layer (:mod:`repro.dispatch`) speaks a
deliberately boring protocol over plain TCP sockets: every message is one
JSON object, encoded canonically (:func:`repro.store.records.canonical_json`)
and prefixed with its byte length as a 4-byte big-endian unsigned integer.
No pickling (a worker must never execute a frame), no partial messages (a
reader either gets a whole object or detects the truncation), no framing
ambiguity (newlines inside strings cannot split a message the way a
line-delimited protocol would).

This mirrors the MAAS region/rack controller RPC in spirit -- a small,
versionless set of typed JSON messages between a coordinator and its
registered workers -- without dragging in Twisted: the stdlib ``socket``
and ``struct`` modules are the whole dependency surface.

Every frame is a JSON *object* with a ``"type"`` key; the coordinator and
worker modules document the concrete frame vocabulary:

* worker -> coordinator: ``register`` (with a ``capabilities`` report --
  cpu count, numpy availability, micro-benchmark ``score`` -- feeding
  capability-weighted lease sizing), ``heartbeat`` (optionally carrying
  ``timings``, completed-cell wall times that calibrate the
  coordinator's cost model), ``cell``, ``shard_done``, ``shard_failed``.
* coordinator -> worker: ``grid``, ``shard``, ``trim`` (work stealing:
  the named indices were re-leased elsewhere, skip them), ``shutdown``.
* client <-> coordinator: ``grid`` in; ``cell``, ``grid_done``,
  ``error`` out.

A frame larger than :data:`MAX_FRAME_BYTES` is refused on both ends --
the largest legitimate frame is a grid description (a few hundred bytes
per spec), so the cap is purely a defence against a garbage length
prefix from a non-protocol peer.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, Optional

from repro.store.records import canonical_json

#: Upper bound on one frame's JSON payload.  Grid descriptions grow with
#: the number of specs (~100 bytes each); 64 MiB leaves orders of
#: magnitude of headroom while rejecting nonsense length prefixes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class DispatchError(RuntimeError):
    """A dispatch-layer failure: protocol violation, lost peer, bad grid."""


class FrameError(DispatchError):
    """A peer sent bytes that are not a well-formed frame."""


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF at a
    frame boundary.  EOF *inside* a frame raises :class:`FrameError` --
    the peer died mid-message and the partial bytes are unusable.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise FrameError(
                f"peer closed the connection mid-frame "
                f"({count - remaining}/{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FramedSocket:
    """One peer connection speaking length-prefixed JSON frames.

    ``send`` is serialised with a lock so concurrent senders (a worker's
    heartbeat thread next to its shard-result stream, the coordinator's
    per-worker reader threads forwarding cells to one client) cannot
    interleave bytes of two frames.  ``recv`` is only ever called from a
    single reader thread per connection, so it takes no lock.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()

    def send(self, frame: Dict[str, Any]) -> None:
        """Send one frame; raises ``OSError`` when the peer is gone."""
        payload = canonical_json(frame).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise FrameError(
                f"refusing to send a {len(payload)}-byte frame "
                f"(cap {MAX_FRAME_BYTES})"
            )
        with self._send_lock:
            self.sock.sendall(_LENGTH.pack(len(payload)) + payload)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Receive one frame; ``None`` on clean EOF at a frame boundary.

        Raises :class:`FrameError` on truncation, an oversized or
        negative length prefix, or a payload that is not a JSON object --
        all signs the peer is not speaking this protocol (or died
        mid-send), in which case the connection is unusable.
        """
        header = _recv_exactly(self.sock, _LENGTH.size)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
            )
        payload = _recv_exactly(self.sock, length)
        if payload is None:
            raise FrameError("peer closed the connection between header and payload")
        try:
            frame = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrameError(f"undecodable frame payload: {error}") from None
        if not isinstance(frame, dict):
            raise FrameError(
                f"frame payload must be a JSON object, got {type(frame).__name__}"
            )
        return frame

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def parse_address(text: str) -> tuple:
    """Parse a ``host:port`` string into an ``(host, port)`` pair.

    The shared parser of ``repro worker join HOST:PORT``, ``repro sweep
    --coordinator`` and the service worker's ``--coordinator`` flag.
    Raises ``ValueError`` with a usage-grade message.
    """
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"invalid coordinator address {text!r}: expected HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid coordinator port {port_text!r} in {text!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"coordinator port {port} out of range 1..65535")
    return host, port
