"""Dispatch backends: where a sweep grid's cells execute.

:func:`repro.analysis.sweep.run_sweep_grid` aggregates results from
whatever object offers the :class:`repro.runner.batch.BatchRunner`
mapping surface (``jobs`` / ``map`` / ``imap`` with ordered results).
This module names the three ways to provide one:

* ``inprocess`` -- a ``BatchRunner(jobs=1)``: every cell runs serially in
  the calling process.  The reference backend every other one is proven
  byte-identical against.
* ``multiprocessing`` -- a ``BatchRunner`` process pool on the local box
  (the historical ``--jobs N`` path).
* ``remote`` -- a :class:`RemoteDispatch`: cells are shipped as shards to
  workers registered with a
  :class:`repro.dispatch.coordinator.DispatchCoordinator`, possibly on
  other hosts, and the results stream back over the socket.

``RemoteDispatch`` reorders out-of-order completions back into task
order before yielding, so the consumer-side aggregation (checkpoint
appends, progress, cancellation) is exactly the code path the local
backends use -- byte-identical output is structural, not coincidental.
"""

from __future__ import annotations

import hashlib
import socket
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.dispatch.protocol import DispatchError, FramedSocket
from repro.runner.batch import BatchRunner

#: The selectable dispatch backends, in CLI ``--dispatch`` order.
DISPATCH_NAMES = ("inprocess", "multiprocessing", "remote")


def dispatch_signature(keys: List[str]) -> str:
    """The digest identifying one dispatched batch of task keys.

    Stamped into every worker's shard-store header so
    :func:`repro.store.merge.merge_shards` can refuse to mix shards of
    different grids.  Same construction as
    :func:`repro.analysis.sweep.grid_signature` (sha256 over joined
    keys), but over the *submitted* cells -- a resumed grid dispatches a
    subset, which is its own identity.
    """
    return hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()[:16]


class RemoteDispatch:
    """A dispatch backend that ships grid cells to remote workers.

    Duck-types the ``BatchRunner`` mapping surface for grid-cell tasks:
    ``map``/``imap`` accept the ``(spec, name)`` task list and
    ``(algorithms, base_seed)`` context of
    :func:`repro.analysis.sweep._sweep_one_grid_cell` -- the one callable
    this backend understands, since workers rebuild the kernel table from
    registry *names* rather than unpickling callables.

    Construct with either ``coordinator`` (an owned, started
    :class:`DispatchCoordinator` -- the embedded ``repro sweep
    --dispatch remote`` path) or ``address`` (join an existing
    coordinator, e.g. the service daemon's).  ``kind`` selects how
    algorithm names resolve on workers (``"sweep"`` registry vs
    ``"quantum"`` problems), mirroring ``GridRequest.kind``.  ``workers``
    is the *requested* worker count, recorded as the run header's
    ``jobs`` value.
    """

    name = "remote"

    def __init__(
        self,
        address: Optional[Tuple[str, int]] = None,
        coordinator=None,
        kind: str = "sweep",
        workers: int = 1,
        connect_timeout: float = 10.0,
    ) -> None:
        if (address is None) == (coordinator is None):
            raise ValueError(
                "RemoteDispatch needs exactly one of address= or coordinator="
            )
        if kind not in ("sweep", "quantum"):
            raise ValueError(f"unknown grid kind {kind!r}")
        self._address = address
        self._coordinator = coordinator
        self.kind = kind
        self.jobs = max(1, int(workers))
        self.connect_timeout = connect_timeout

    @property
    def address(self) -> Tuple[str, int]:
        if self._coordinator is not None:
            return self._coordinator.address
        return self._address

    # -- BatchRunner mapping surface -----------------------------------
    def map(self, function, tasks: Iterable, context: Any = None) -> List:
        return list(self.imap(function, tasks, context=context))

    def imap(self, function, tasks: Iterable, context: Any = None) -> Iterator:
        """Stream one record per task, in task order.

        ``function`` must be the grid-cell body
        (``_sweep_one_grid_cell``); anything else cannot be named over
        the wire and is refused loudly rather than silently misrun.
        """
        from repro.analysis.sweep import _sweep_one_grid_cell

        if function is not _sweep_one_grid_cell:
            raise DispatchError(
                "remote dispatch only executes sweep grid cells "
                f"(got {getattr(function, '__name__', function)!r}); use a "
                "local dispatch backend for arbitrary callables"
            )
        tasks = list(tasks)
        if not tasks:
            return iter(())
        return self._stream(self._describe(tasks, context), len(tasks))

    # -- grid description ----------------------------------------------
    def _describe(self, tasks: List, context) -> dict:
        """The wire description of this batch of cells.

        Captures the effective engine / backend / tier / fault process
        defaults -- exactly what the BatchRunner pool initializer ships
        to local workers -- so remote cells run under the same
        selections regardless of the worker host's own defaults.
        """
        from repro.analysis.sweep import sweep_task_key
        from repro.engine import get_default_engine
        from repro.quantum.backend import get_default_schedule_backend
        from repro.tier import get_default_tier
        from repro.store.records import spec_to_dict

        algorithms, base_seed = context
        names = list(algorithms)
        name_index = {name: position for position, name in enumerate(names)}
        specs: List = []
        spec_index: dict = {}
        task_refs: List[List[int]] = []
        keys: List[str] = []
        fault = _current_fault()
        for spec, name in tasks:
            position = spec_index.get(spec)
            if position is None:
                position = spec_index[spec] = len(specs)
                specs.append(spec)
            task_refs.append([position, name_index[name]])
            keys.append(sweep_task_key(spec, name, base_seed, fault))
        return {
            "kind": self.kind,
            "specs": [spec_to_dict(spec) for spec in specs],
            "algorithms": names,
            "tasks": task_refs,
            "base_seed": int(base_seed),
            "signature": dispatch_signature(keys),
            "engine": get_default_engine(),
            "backend": get_default_schedule_backend(),
            "tier": get_default_tier(),
            "fault": _fault_fields(fault),
        }

    # -- the result stream ---------------------------------------------
    def _stream(self, description: dict, total: int) -> Iterator:
        from repro.store.records import record_from_dict

        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout
            )
        except OSError as error:
            raise DispatchError(
                f"could not reach dispatch coordinator at "
                f"{self.address[0]}:{self.address[1]}: {error}"
            ) from None
        sock.settimeout(None)
        conn = FramedSocket(sock)
        try:
            conn.send({"type": "grid", "description": description})
            buffered: dict = {}
            next_index = 0
            while next_index < total:
                frame = conn.recv()
                if frame is None:
                    raise DispatchError(
                        "dispatch coordinator closed the connection with "
                        f"{total - next_index} cell(s) outstanding"
                    )
                kind = frame.get("type")
                if kind == "cell":
                    index = int(frame["index"])
                    if index < next_index or index in buffered:
                        continue  # duplicate completion: first write wins
                    buffered[index] = record_from_dict(frame["record"])
                    while next_index in buffered:
                        yield buffered.pop(next_index)
                        next_index += 1
                elif kind == "error":
                    raise DispatchError(
                        f"remote grid failed: {frame.get('message')}"
                    )
                elif kind == "grid_done":
                    raise DispatchError(
                        "coordinator reported completion with "
                        f"{total - next_index} cell(s) missing"
                    )
        finally:
            conn.close()


def _current_fault():
    """The effective fault model, or ``None`` for the null model."""
    from repro.faults import get_default_fault_model

    fault = get_default_fault_model()
    return None if fault.is_null else fault


def _fault_fields(fault) -> Optional[dict]:
    if fault is None:
        return None
    from dataclasses import fields

    return {item.name: getattr(fault, item.name) for item in fields(fault)}


def resolve_dispatch(
    dispatch=None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
):
    """The runner object a ``dispatch`` selection denotes.

    ``None`` keeps the caller's ``runner`` (or a fresh
    ``BatchRunner(jobs=jobs)``); the backend *names* map as documented in
    :data:`DISPATCH_NAMES`; any other object is assumed to already offer
    the BatchRunner mapping surface (e.g. a configured
    :class:`RemoteDispatch`) and is returned unchanged.

    The bare name ``"remote"`` is refused: a remote backend needs a
    coordinator (its address or an embedded instance), which only the
    CLI / service layers can supply -- failing loudly here beats hanging
    on a coordinator that was never started.
    """
    if dispatch is None:
        return runner if runner is not None else BatchRunner(jobs=jobs)
    if isinstance(dispatch, str):
        if dispatch == "inprocess":
            return BatchRunner(jobs=1)
        if dispatch == "multiprocessing":
            return runner if runner is not None else BatchRunner(jobs=jobs)
        if dispatch == "remote":
            raise DispatchError(
                "dispatch backend 'remote' needs a coordinator: pass a "
                "configured repro.dispatch.RemoteDispatch instance (the "
                "CLI builds one from --dispatch-port/--coordinator, the "
                "service daemon from repro serve --dispatch remote)"
            )
        raise DispatchError(
            f"unknown dispatch backend {dispatch!r} "
            f"(available: {', '.join(DISPATCH_NAMES)})"
        )
    return dispatch
