"""The dispatch coordinator: registration, shard assignment, requeue.

One coordinator serves two kinds of peers over the same listening socket
(:mod:`repro.dispatch.protocol` frames):

* **workers** (``repro worker join HOST:PORT``) open a connection, send a
  ``register`` frame and then wait for work, sending ``heartbeat`` frames
  while idle.  The coordinator answers with a ``grid`` description frame
  (once per worker per grid) followed by ``shard`` frames naming the task
  indices to run; the worker streams back one ``cell`` frame per
  completed cell and a ``shard_done`` when the slice is finished.
* **clients** (a :class:`repro.dispatch.backend.RemoteDispatch` inside
  ``repro sweep`` or a service job worker) send a single ``grid`` frame
  describing the cells to run and then receive the completed ``cell``
  frames -- in completion order, dedup'd -- until ``grid_done``.

Scheduling mirrors the job ledger's lease model
(:meth:`repro.service.jobs.JobLedger.recover`) at shard granularity: a
shard is *leased* to exactly one live worker, and a worker that
disappears -- EOF, connection reset, or no heartbeat within
``worker_timeout`` -- has the unfinished remainder of its shards requeued
at the *front* of the queue, so another worker picks the orphaned cells
up first.  Because every cell is deterministic in its task key (see
:func:`repro.analysis.sweep.sweep_task_key`), a cell that was computed
twice during a requeue race produces identical records; the coordinator
forwards only the first completion and the shard-store merge
(:func:`repro.store.merge.merge_shards`) deduplicates the rest, so the
final output is byte-identical to a serial run no matter how many workers
died along the way.

All coordinator state lives behind one lock; worker/client connection
reader threads mutate it through the ``_on_*`` handlers.  Frames to peers
are sent while holding the lock -- peers recv promptly by protocol
(workers between shards, clients in their result loop), so sends cannot
wedge the coordinator.
"""

from __future__ import annotations

import collections
import socket
import threading
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.dispatch.protocol import DispatchError, FramedSocket, FrameError

#: Ceiling on one shard's cell count.  Mirrors BatchRunner's chunk cap:
#: large enough to amortise per-shard framing, small enough that a dead
#: worker forfeits little work and load stays balanced.
MAX_SHARD_CELLS = 16


class _WorkerState:
    """One registered worker connection and its current lease."""

    def __init__(self, worker_id: str, conn: FramedSocket) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.shard: Optional["_Shard"] = None
        self.known_grids: set = set()
        self.alive = True


class _Shard:
    """A contiguous slice of one grid's task indices, leased as a unit."""

    def __init__(self, shard_id: str, grid_id: str, indices: List[int]) -> None:
        self.shard_id = shard_id
        self.grid_id = grid_id
        self.indices = list(indices)
        self.remaining = set(indices)


class _GridState:
    """One client's submitted grid and its completion bookkeeping."""

    def __init__(
        self, grid_id: str, description: Dict[str, Any],
        total: int, client: FramedSocket,
    ) -> None:
        self.grid_id = grid_id
        self.description = description
        self.total = total
        self.client = client
        self.completed: set = set()
        self.shard_counter = 0
        self.finished = False


class DispatchCoordinator:
    """Register workers, lease grid shards to them, forward results.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  ``shard_size=None`` sizes shards per grid as
    ``ceil(cells / (4 * workers))`` capped at :data:`MAX_SHARD_CELLS`
    (the BatchRunner chunk heuristic).  ``worker_timeout`` is the
    heartbeat deadline after which a silent worker is declared dead and
    its shards requeued.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_size: Optional[int] = None,
        worker_timeout: float = 30.0,
    ) -> None:
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.host = host
        self.port = port
        self.shard_size = shard_size
        self.worker_timeout = worker_timeout
        self._lock = threading.Lock()
        self._workers_changed = threading.Condition(self._lock)
        self._workers: Dict[int, _WorkerState] = {}
        self._grids: Dict[str, _GridState] = {}
        self._queue: Deque[_Shard] = collections.deque()
        self._grid_counter = 0
        self._running = False
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "DispatchCoordinator":
        """Bind, listen and start accepting peers (returns self)."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        self.port = server.getsockname()[1]
        self._server = server
        self._running = True
        thread = threading.Thread(
            target=self._accept_loop, name="dispatch-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Shut down: notify workers, drop clients, close the socket."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            workers = list(self._workers.values())
            grids = list(self._grids.values())
            self._queue.clear()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for worker in workers:
            try:
                worker.conn.send({"type": "shutdown"})
            except OSError:
                pass
            worker.conn.close()
        for grid in grids:
            grid.client.close()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "DispatchCoordinator":
        return self.start() if not self._running else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` peers connect to (valid after start)."""
        return (self.host, self.port)

    def worker_count(self) -> int:
        """Number of currently registered (live) workers."""
        with self._lock:
            return len(self._workers)

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are registered.

        Raises :class:`DispatchError` on timeout -- starting a remote
        grid with no workers would hang silently otherwise.
        """
        with self._workers_changed:
            ok = self._workers_changed.wait_for(
                lambda: len(self._workers) >= count, timeout=timeout
            )
        if not ok:
            raise DispatchError(
                f"timed out after {timeout:g}s waiting for {count} dispatch "
                f"worker(s) to register (have {self.worker_count()}); start "
                "workers with: repro worker join "
                f"{self.host}:{self.port}"
            )

    # -- peer connections ----------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while self._running:
            try:
                sock, _ = self._server.accept()
            except OSError:
                return  # listening socket closed by stop()
            conn = FramedSocket(sock)
            thread = threading.Thread(
                target=self._serve_peer, args=(conn,),
                name="dispatch-peer", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_peer(self, conn: FramedSocket) -> None:
        """Route a fresh connection by its first frame (register/grid)."""
        try:
            first = conn.recv()
        except (FrameError, OSError):
            conn.close()
            return
        if first is None:
            conn.close()
            return
        kind = first.get("type")
        if kind == "register":
            self._serve_worker(conn, first)
        elif kind == "grid":
            self._serve_client(conn, first)
        else:
            try:
                conn.send({
                    "type": "error",
                    "message": f"expected a register or grid frame, got {kind!r}",
                })
            except OSError:
                pass
            conn.close()

    # -- worker side ---------------------------------------------------
    def _serve_worker(self, conn: FramedSocket, register: Dict[str, Any]) -> None:
        worker = _WorkerState(str(register.get("worker", "worker")), conn)
        conn.sock.settimeout(self.worker_timeout)
        with self._workers_changed:
            if not self._running:
                conn.close()
                return
            self._workers[id(worker)] = worker
            self._workers_changed.notify_all()
            self._schedule_locked()
        try:
            while True:
                frame = conn.recv()  # socket.timeout == missed heartbeats
                if frame is None:
                    return
                kind = frame.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "cell":
                    self._on_cell(frame)
                elif kind == "shard_done":
                    self._on_shard_done(worker, frame)
                elif kind == "shard_failed":
                    self._on_shard_failed(worker, frame)
        except (FrameError, OSError):
            return
        finally:
            self._drop_worker(worker)
            conn.close()

    def _drop_worker(self, worker: _WorkerState) -> None:
        """Forget a dead worker, requeueing its unfinished shard first.

        The stale-lease idiom of the job ledger: work leased to a dead
        holder goes back to the front of the queue, trimmed to the cells
        the worker had not already streamed back.
        """
        with self._workers_changed:
            worker.alive = False
            self._workers.pop(id(worker), None)
            shard = worker.shard
            worker.shard = None
            if shard is not None and shard.remaining:
                grid = self._grids.get(shard.grid_id)
                if grid is not None and not grid.finished:
                    shard.indices = sorted(shard.remaining)
                    self._queue.appendleft(shard)
            self._workers_changed.notify_all()
            self._schedule_locked()

    # -- client side ---------------------------------------------------
    def _serve_client(self, conn: FramedSocket, submit: Dict[str, Any]) -> None:
        grid = self._admit_grid(conn, submit)
        if grid is None:
            conn.close()
            return
        try:
            # The client sends nothing after the grid frame; this recv
            # exists to detect its disconnect (cancel, crash) promptly.
            while conn.recv() is not None:
                pass
        except (FrameError, OSError):
            pass
        finally:
            self._abort_grid(grid)
            conn.close()

    def _admit_grid(
        self, conn: FramedSocket, submit: Dict[str, Any]
    ) -> Optional[_GridState]:
        description = submit.get("description")
        tasks = description.get("tasks") if isinstance(description, dict) else None
        if not isinstance(tasks, list):
            try:
                conn.send({
                    "type": "error",
                    "message": "grid frame must carry a description with tasks",
                })
            except OSError:
                pass
            return None
        with self._lock:
            if not self._running:
                return None
            self._grid_counter += 1
            grid_id = f"g{self._grid_counter}"
            grid = _GridState(grid_id, description, len(tasks), conn)
            self._grids[grid_id] = grid
            if grid.total == 0:
                grid.finished = True
                try:
                    conn.send({"type": "grid_done"})
                except OSError:
                    pass
                return grid
            for shard in self._partition_locked(grid):
                self._queue.append(shard)
            self._schedule_locked()
        return grid

    def _partition_locked(self, grid: _GridState) -> List[_Shard]:
        """Slice a grid's task indices into contiguous lease units."""
        size = self.shard_size
        if size is None:
            workers = max(1, len(self._workers))
            size = min(MAX_SHARD_CELLS, max(1, -(-grid.total // (4 * workers))))
        shards = []
        for start in range(0, grid.total, size):
            grid.shard_counter += 1
            shard_id = f"{grid.grid_id}s{grid.shard_counter}"
            indices = list(range(start, min(start + size, grid.total)))
            shards.append(_Shard(shard_id, grid.grid_id, indices))
        return shards

    def _abort_grid(self, grid: _GridState) -> None:
        """Drop a grid whose client is gone; orphan its queued shards."""
        with self._lock:
            grid.finished = True
            self._grids.pop(grid.grid_id, None)
            if self._queue:
                self._queue = collections.deque(
                    shard for shard in self._queue
                    if shard.grid_id != grid.grid_id
                )

    def _fail_grid(self, grid: _GridState, message: str) -> None:
        """A worker reported a cell exception: surface it to the client.

        Only reachable for genuine kernel bugs -- under a fault model,
        non-convergence becomes a failed *record*, not an exception
        (see :func:`repro.analysis.sweep._run_cell`).
        """
        grid.finished = True
        self._grids.pop(grid.grid_id, None)
        self._queue = collections.deque(
            shard for shard in self._queue if shard.grid_id != grid.grid_id
        )
        try:
            grid.client.send({"type": "error", "message": message})
        except OSError:
            pass
        grid.client.close()

    # -- frame handlers (worker reader threads) ------------------------
    def _on_cell(self, frame: Dict[str, Any]) -> None:
        with self._lock:
            grid = self._grids.get(str(frame.get("grid")))
            if grid is None or grid.finished:
                return  # stale result from an aborted/finished grid
            index = int(frame["index"])
            for worker in self._workers.values():
                shard = worker.shard
                if shard is not None and shard.grid_id == grid.grid_id:
                    shard.remaining.discard(index)
            if index in grid.completed:
                return  # duplicate from a requeue race: first write wins
            grid.completed.add(index)
            try:
                grid.client.send({
                    "type": "cell",
                    "index": index,
                    "key": frame.get("key"),
                    "record": frame.get("record"),
                })
            except OSError:
                self._grids.pop(grid.grid_id, None)
                grid.finished = True
                return
            if len(grid.completed) >= grid.total:
                grid.finished = True
                self._grids.pop(grid.grid_id, None)
                try:
                    grid.client.send({"type": "grid_done"})
                except OSError:
                    pass

    def _on_shard_done(self, worker: _WorkerState, frame: Dict[str, Any]) -> None:
        with self._lock:
            shard = worker.shard
            if shard is not None and shard.shard_id == frame.get("shard"):
                worker.shard = None
            self._schedule_locked()

    def _on_shard_failed(self, worker: _WorkerState, frame: Dict[str, Any]) -> None:
        with self._lock:
            shard = worker.shard
            if shard is not None and shard.shard_id == frame.get("shard"):
                worker.shard = None
            grid = self._grids.get(str(frame.get("grid")))
            if grid is not None:
                self._fail_grid(
                    grid,
                    str(frame.get("message", "worker reported a shard failure")),
                )
            self._schedule_locked()

    # -- scheduling ----------------------------------------------------
    def _schedule_locked(self) -> None:
        """Lease queued shards to idle workers (caller holds the lock)."""
        while self._queue:
            worker = next(
                (
                    candidate
                    for candidate in self._workers.values()
                    if candidate.alive and candidate.shard is None
                ),
                None,
            )
            if worker is None:
                return
            shard = self._queue.popleft()
            grid = self._grids.get(shard.grid_id)
            if grid is None or grid.finished:
                continue
            try:
                if shard.grid_id not in worker.known_grids:
                    worker.conn.send({
                        "type": "grid",
                        "grid": shard.grid_id,
                        "description": grid.description,
                    })
                    worker.known_grids.add(shard.grid_id)
                worker.conn.send({
                    "type": "shard",
                    "grid": shard.grid_id,
                    "shard": shard.shard_id,
                    "indices": shard.indices,
                })
            except OSError:
                # Dead before the lease landed: put the shard back and
                # drop the worker (its reader thread will also land here
                # eventually; removal is idempotent).
                self._queue.appendleft(shard)
                worker.alive = False
                self._workers.pop(id(worker), None)
                continue
            worker.shard = shard
