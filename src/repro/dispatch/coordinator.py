"""The dispatch coordinator: registration, shard scheduling, requeue.

One coordinator serves two kinds of peers over the same listening socket
(:mod:`repro.dispatch.protocol` frames):

* **workers** (``repro worker join HOST:PORT``) open a connection, send a
  ``register`` frame (carrying a ``capabilities`` report: cpu count,
  numpy-tier availability, a micro-benchmark throughput score) and then
  wait for work, sending ``heartbeat`` frames while idle.  The
  coordinator answers with a ``grid`` description frame (once per worker
  per grid) followed by ``shard`` frames naming the task indices to run;
  the worker streams back one ``cell`` frame per completed cell and a
  ``shard_done`` when the slice is finished.  Heartbeats carry the wall
  times of recently completed cells, which calibrate the coordinator's
  cost model online.
* **clients** (a :class:`repro.dispatch.backend.RemoteDispatch` inside
  ``repro sweep`` or a service job worker) send a single ``grid`` frame
  describing the cells to run and then receive the completed ``cell``
  frames -- in completion order, dedup'd -- until ``grid_done``.

Two scheduling policies exist (``shard_policy``):

* ``"static"`` -- the PR-9 behaviour: the grid is sliced once into equal
  contiguous shards at admission and the queue drains to whichever
  worker frees up first.  The control arm of the dispatch benchmark.
* ``"adaptive"`` (default) -- shards are cut **at lease time** from the
  grid's remaining index range, sized by the per-cell cost model
  (:mod:`repro.dispatch.cost`) and weighted by the leasing worker's
  capability score: a fast worker takes a larger slice of the remaining
  *cost*, and every cut takes ``remaining / (factor * fleet)`` so shards
  shrink toward the tail (factoring / guided self-scheduling).  When the
  work drains and a live worker idles, the coordinator **steals**: the
  largest in-flight remainder is split, the tail half re-leased to the
  idle worker, and the victim told to skip the stolen cells (a ``trim``
  frame, honoured between cells).  Past ``straggler_deadline`` seconds
  it also **speculates**: an unfinished shard's remainder is re-leased
  *as a copy* to an idle worker and both race.

Stealing and speculation never threaten correctness: every cell is
deterministic in its task key (:func:`repro.analysis.sweep.sweep_task_key`),
so a cell computed twice produces identical records; the coordinator
forwards only the first completion and the shard-store merge
(:func:`repro.store.merge.merge_shards`) deduplicates the rest
first-complete-wins, so the final output is byte-identical to a serial
run no matter how the race went.  A worker that disappears -- EOF,
connection reset, or no heartbeat within ``worker_timeout`` -- has the
unfinished remainder of its shard requeued at the *front* of the queue,
exactly as in PR 9.

All coordinator state lives behind one lock; worker/client connection
reader threads mutate it through the ``_on_*`` handlers, and a ticker
thread re-runs scheduling periodically so straggler deadlines fire even
when no frame arrives.  Frames to peers are sent while holding the lock
-- peers recv promptly by protocol (workers between cells, clients in
their result loop), so sends cannot wedge the coordinator.
"""

from __future__ import annotations

import collections
import socket
import threading
import time
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.dispatch.cost import FACTOR, CostModel, take_cost_prefix
from repro.dispatch.protocol import DispatchError, FramedSocket, FrameError

#: Ceiling on one shard's cell count.  Mirrors BatchRunner's chunk cap:
#: large enough to amortise per-shard framing, small enough that a dead
#: worker forfeits little work and load stays balanced.
MAX_SHARD_CELLS = 16

#: The selectable shard scheduling policies.
SHARD_POLICIES = ("static", "adaptive")

#: Capability weights below this floor are clamped: a worker that
#: reported a zero/garbage score must still receive work.
_MIN_WEIGHT = 1e-6


class _WorkerState:
    """One registered worker connection and its current lease."""

    def __init__(
        self,
        worker_id: str,
        conn: FramedSocket,
        capabilities: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.shard: Optional["_Shard"] = None
        self.known_grids: set = set()
        self.alive = True
        self.capabilities: Dict[str, Any] = dict(capabilities or {})
        self.cells = 0
        try:
            score = float(self.capabilities.get("score", 1.0))
        except (TypeError, ValueError):
            score = 1.0
        #: Relative throughput weight for capability-weighted lease
        #: sizing; only ratios between workers matter.
        self.weight = score if score > _MIN_WEIGHT else 1.0


class _Shard:
    """A slice of one grid's task indices, leased as a unit."""

    def __init__(
        self,
        shard_id: str,
        grid_id: str,
        indices: List[int],
        speculative: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.grid_id = grid_id
        self.indices = list(indices)
        self.remaining = set(indices)
        self.speculative = speculative
        #: The original shard this one speculatively duplicates, if any.
        self.origin: Optional["_Shard"] = None
        #: Whether a speculative copy of *this* shard is in flight.
        self.has_speculative_copy = False
        #: ``time.monotonic()`` of the last lease (straggler detection).
        self.leased_at = 0.0


class _GridState:
    """One client's submitted grid and its completion bookkeeping."""

    def __init__(
        self, grid_id: str, description: Dict[str, Any],
        total: int, client: FramedSocket,
    ) -> None:
        self.grid_id = grid_id
        self.description = description
        self.total = total
        self.client = client
        self.completed: set = set()
        self.shard_counter = 0
        self.finished = False
        #: Unleased task indices, in grid order (adaptive policy only;
        #: static grids are pre-partitioned into the queue at admission).
        self.pending: List[int] = []
        #: Per-task-index cost estimates (adaptive policy only).
        self.costs: List[float] = []


class DispatchCoordinator:
    """Register workers, lease grid shards to them, forward results.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  ``shard_policy`` selects static pre-partitioning or
    adaptive cost-model scheduling (see the module docstring); an
    explicit ``shard_size`` forces fixed-size static slicing regardless
    of policy (the historical knob, kept for tests and benchmarks).
    ``straggler_deadline`` is how long an in-flight shard may run before
    idle workers are allowed to speculatively re-execute its remainder.
    ``worker_timeout`` is the heartbeat deadline after which a silent
    worker is declared dead and its shards requeued.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_size: Optional[int] = None,
        worker_timeout: float = 30.0,
        shard_policy: str = "adaptive",
        straggler_deadline: float = 10.0,
    ) -> None:
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {shard_policy!r} "
                f"(available: {', '.join(SHARD_POLICIES)})"
            )
        if straggler_deadline <= 0:
            raise ValueError(
                f"straggler_deadline must be > 0, got {straggler_deadline}"
            )
        self.host = host
        self.port = port
        self.shard_size = shard_size
        self.worker_timeout = worker_timeout
        self.shard_policy = shard_policy
        self.straggler_deadline = straggler_deadline
        self._lock = threading.Lock()
        self._workers_changed = threading.Condition(self._lock)
        self._workers: Dict[int, _WorkerState] = {}
        self._grids: Dict[str, _GridState] = {}
        self._queue: Deque[_Shard] = collections.deque()
        self._grid_counter = 0
        self._running = False
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stop_ticker = threading.Event()
        self._cost_model = CostModel()
        self._counters: Dict[str, int] = {
            "cells": 0,
            "duplicate_cells": 0,
            "shards_leased": 0,
            "requeues": 0,
            "steals": 0,
            "speculative_leases": 0,
            "trims_sent": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "DispatchCoordinator":
        """Bind, listen and start accepting peers (returns self)."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        self.port = server.getsockname()[1]
        self._server = server
        self._running = True
        self._stop_ticker.clear()
        thread = threading.Thread(
            target=self._accept_loop, name="dispatch-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        if self.shard_policy == "adaptive":
            # Straggler deadlines must fire even when no frames arrive:
            # a ticker re-runs scheduling on a fraction of the deadline.
            ticker = threading.Thread(
                target=self._ticker_loop, name="dispatch-ticker", daemon=True
            )
            ticker.start()
            self._threads.append(ticker)
        return self

    def stop(self) -> None:
        """Shut down: notify workers, drop clients, close the socket."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            workers = list(self._workers.values())
            grids = list(self._grids.values())
            self._queue.clear()
        self._stop_ticker.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for worker in workers:
            try:
                worker.conn.send({"type": "shutdown"})
            except OSError:
                pass
            worker.conn.close()
        for grid in grids:
            grid.client.close()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "DispatchCoordinator":
        return self.start() if not self._running else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` peers connect to (valid after start)."""
        return (self.host, self.port)

    def worker_count(self) -> int:
        """Number of currently registered (live) workers."""
        with self._lock:
            return len(self._workers)

    def stats(self) -> Dict[str, Any]:
        """A snapshot of the scheduler's counters and fleet state.

        ``steals`` / ``speculative_leases`` / ``trims_sent`` /
        ``requeues`` / ``duplicate_cells`` count scheduling events since
        start; ``workers`` describes the registered fleet (id, weight,
        capabilities, cells completed); ``idle_workers`` is the number of
        live workers currently without a lease.  Surfaced by
        ``--dispatch-stats``, the service ``/metrics`` endpoint and the
        dispatch benchmark's straggler scenario.
        """
        with self._lock:
            workers = [
                {
                    "worker": state.worker_id,
                    "weight": round(state.weight, 6),
                    "cells": state.cells,
                    "capabilities": dict(state.capabilities),
                    "idle": state.shard is None,
                }
                for state in self._workers.values()
            ]
            in_flight = sum(
                1 for state in self._workers.values() if state.shard is not None
            )
            return {
                **dict(self._counters),
                "policy": self.shard_policy,
                "straggler_deadline": self.straggler_deadline,
                "registered_workers": len(workers),
                "idle_workers": sum(1 for item in workers if item["idle"]),
                "in_flight_shards": in_flight,
                "queued_shards": len(self._queue),
                "calibrated_algorithms": self._cost_model.observation_count(),
                "workers": sorted(workers, key=lambda item: item["worker"]),
            }

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are registered.

        Raises :class:`DispatchError` on timeout -- starting a remote
        grid with no workers would hang silently otherwise.
        """
        with self._workers_changed:
            ok = self._workers_changed.wait_for(
                lambda: len(self._workers) >= count, timeout=timeout
            )
        if not ok:
            raise DispatchError(
                f"timed out after {timeout:g}s waiting for {count} dispatch "
                f"worker(s) to register (have {self.worker_count()}); start "
                "workers with: repro worker join "
                f"{self.host}:{self.port}"
            )

    # -- peer connections ----------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while self._running:
            try:
                sock, _ = self._server.accept()
            except OSError:
                return  # listening socket closed by stop()
            conn = FramedSocket(sock)
            thread = threading.Thread(
                target=self._serve_peer, args=(conn,),
                name="dispatch-peer", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _ticker_loop(self) -> None:
        interval = max(0.05, min(1.0, self.straggler_deadline / 4.0))
        while not self._stop_ticker.wait(interval):
            with self._lock:
                if not self._running:
                    return
                self._schedule_locked()

    def _serve_peer(self, conn: FramedSocket) -> None:
        """Route a fresh connection by its first frame (register/grid)."""
        try:
            first = conn.recv()
        except (FrameError, OSError):
            conn.close()
            return
        if first is None:
            conn.close()
            return
        kind = first.get("type")
        if kind == "register":
            self._serve_worker(conn, first)
        elif kind == "grid":
            self._serve_client(conn, first)
        else:
            try:
                conn.send({
                    "type": "error",
                    "message": f"expected a register or grid frame, got {kind!r}",
                })
            except OSError:
                pass
            conn.close()

    # -- worker side ---------------------------------------------------
    def _serve_worker(self, conn: FramedSocket, register: Dict[str, Any]) -> None:
        capabilities = register.get("capabilities")
        worker = _WorkerState(
            str(register.get("worker", "worker")),
            conn,
            capabilities if isinstance(capabilities, dict) else None,
        )
        conn.sock.settimeout(self.worker_timeout)
        with self._workers_changed:
            if not self._running:
                conn.close()
                return
            self._workers[id(worker)] = worker
            self._workers_changed.notify_all()
            self._schedule_locked()
        try:
            while True:
                frame = conn.recv()  # socket.timeout == missed heartbeats
                if frame is None:
                    return
                kind = frame.get("type")
                if kind == "heartbeat":
                    self._on_heartbeat(frame)
                elif kind == "cell":
                    self._on_cell(worker, frame)
                elif kind == "shard_done":
                    self._on_shard_done(worker, frame)
                elif kind == "shard_failed":
                    self._on_shard_failed(worker, frame)
        except (FrameError, OSError):
            return
        finally:
            self._drop_worker(worker)
            conn.close()

    def _drop_worker(self, worker: _WorkerState) -> None:
        """Forget a dead worker, requeueing its unfinished shard first.

        The stale-lease idiom of the job ledger: work leased to a dead
        holder goes back to the front of the queue, trimmed to the cells
        the worker had not already streamed back.
        """
        with self._workers_changed:
            worker.alive = False
            self._workers.pop(id(worker), None)
            shard = worker.shard
            worker.shard = None
            if shard is not None and shard.remaining:
                grid = self._grids.get(shard.grid_id)
                if grid is not None and not grid.finished:
                    shard.indices = sorted(shard.remaining)
                    self._queue.appendleft(shard)
                    self._counters["requeues"] += 1
            if shard is not None and shard.origin is not None:
                # A dead speculator frees its original for re-speculation.
                shard.origin.has_speculative_copy = False
            self._workers_changed.notify_all()
            self._schedule_locked()

    # -- client side ---------------------------------------------------
    def _serve_client(self, conn: FramedSocket, submit: Dict[str, Any]) -> None:
        grid = self._admit_grid(conn, submit)
        if grid is None:
            conn.close()
            return
        try:
            # The client sends nothing after the grid frame; this recv
            # exists to detect its disconnect (cancel, crash) promptly.
            while conn.recv() is not None:
                pass
        except (FrameError, OSError):
            pass
        finally:
            self._abort_grid(grid)
            conn.close()

    def _admit_grid(
        self, conn: FramedSocket, submit: Dict[str, Any]
    ) -> Optional[_GridState]:
        description = submit.get("description")
        tasks = description.get("tasks") if isinstance(description, dict) else None
        if not isinstance(tasks, list):
            try:
                conn.send({
                    "type": "error",
                    "message": "grid frame must carry a description with tasks",
                })
            except OSError:
                pass
            return None
        with self._lock:
            if not self._running:
                return None
            self._grid_counter += 1
            grid_id = f"g{self._grid_counter}"
            grid = _GridState(grid_id, description, len(tasks), conn)
            self._grids[grid_id] = grid
            if grid.total == 0:
                grid.finished = True
                try:
                    conn.send({"type": "grid_done"})
                except OSError:
                    pass
                return grid
            if self._adaptive_for(grid):
                # Lease-time cutting: keep the whole index range pending
                # and size each shard when a worker asks for it.
                grid.costs = self._cost_model.grid_costs(description)
                grid.pending = list(range(grid.total))
            else:
                for shard in self._partition_locked(grid):
                    self._queue.append(shard)
            self._schedule_locked()
        return grid

    def _adaptive_for(self, grid: _GridState) -> bool:
        """Whether this grid schedules adaptively.

        An explicit ``shard_size`` always forces fixed static slices
        (the historical knob); otherwise the policy decides.
        """
        return self.shard_policy == "adaptive" and self.shard_size is None

    def _partition_locked(self, grid: _GridState) -> List[_Shard]:
        """Slice a grid's task indices into contiguous static lease units."""
        size = self.shard_size
        if size is None:
            workers = max(1, len(self._workers))
            size = min(MAX_SHARD_CELLS, max(1, -(-grid.total // (4 * workers))))
        shards = []
        for start in range(0, grid.total, size):
            shards.append(self._new_shard_locked(
                grid, list(range(start, min(start + size, grid.total)))
            ))
        return shards

    def _new_shard_locked(
        self, grid: _GridState, indices: List[int], speculative: bool = False
    ) -> _Shard:
        grid.shard_counter += 1
        suffix = "spec" if speculative else ""
        shard_id = f"{grid.grid_id}s{grid.shard_counter}{suffix}"
        return _Shard(shard_id, grid.grid_id, indices, speculative=speculative)

    def _abort_grid(self, grid: _GridState) -> None:
        """Drop a grid whose client is gone; orphan its queued shards."""
        with self._lock:
            grid.finished = True
            grid.pending = []
            self._grids.pop(grid.grid_id, None)
            if self._queue:
                self._queue = collections.deque(
                    shard for shard in self._queue
                    if shard.grid_id != grid.grid_id
                )

    def _fail_grid(self, grid: _GridState, message: str) -> None:
        """A worker reported a cell exception: surface it to the client.

        Only reachable for genuine kernel bugs -- under a fault model,
        non-convergence becomes a failed *record*, not an exception
        (see :func:`repro.analysis.sweep._run_cell`).
        """
        grid.finished = True
        grid.pending = []
        self._grids.pop(grid.grid_id, None)
        self._queue = collections.deque(
            shard for shard in self._queue if shard.grid_id != grid.grid_id
        )
        try:
            grid.client.send({"type": "error", "message": message})
        except OSError:
            pass
        grid.client.close()

    # -- frame handlers (worker reader threads) ------------------------
    def _on_heartbeat(self, frame: Dict[str, Any]) -> None:
        """Liveness plus cost-model calibration from completed-cell times."""
        timings = frame.get("timings")
        if not timings:
            return
        from repro.dispatch.cost import guarantee_of

        with self._lock:
            for item in timings:
                try:
                    algorithm = str(item["algorithm"])
                    num_nodes = int(item["num_nodes"])
                    seconds = float(item["seconds"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._cost_model.observe(
                    algorithm,
                    num_nodes,
                    seconds,
                    guarantee_of(algorithm, kind=str(item.get("kind", "sweep"))),
                )

    def _on_cell(self, worker: _WorkerState, frame: Dict[str, Any]) -> None:
        with self._lock:
            grid = self._grids.get(str(frame.get("grid")))
            if grid is None or grid.finished:
                return  # stale result from an aborted/finished grid
            index = int(frame["index"])
            for state in self._workers.values():
                shard = state.shard
                if shard is not None and shard.grid_id == grid.grid_id:
                    shard.remaining.discard(index)
            for shard in self._queue:
                if shard.grid_id == grid.grid_id:
                    shard.remaining.discard(index)
            if index in grid.completed:
                # A speculative / stolen / requeued duplicate: the record
                # is byte-identical by construction, so first-complete
                # wins and the copy is only counted.
                self._counters["duplicate_cells"] += 1
                return
            grid.completed.add(index)
            worker.cells += 1
            self._counters["cells"] += 1
            try:
                grid.client.send({
                    "type": "cell",
                    "index": index,
                    "key": frame.get("key"),
                    "record": frame.get("record"),
                })
            except OSError:
                self._grids.pop(grid.grid_id, None)
                grid.finished = True
                return
            if len(grid.completed) >= grid.total:
                grid.finished = True
                grid.pending = []
                self._grids.pop(grid.grid_id, None)
                try:
                    grid.client.send({"type": "grid_done"})
                except OSError:
                    pass

    def _on_shard_done(self, worker: _WorkerState, frame: Dict[str, Any]) -> None:
        with self._lock:
            shard = worker.shard
            if shard is not None and shard.shard_id == frame.get("shard"):
                worker.shard = None
                if shard.origin is not None:
                    shard.origin.has_speculative_copy = False
            self._schedule_locked()

    def _on_shard_failed(self, worker: _WorkerState, frame: Dict[str, Any]) -> None:
        with self._lock:
            shard = worker.shard
            if shard is not None and shard.shard_id == frame.get("shard"):
                worker.shard = None
            grid = self._grids.get(str(frame.get("grid")))
            if grid is not None:
                self._fail_grid(
                    grid,
                    str(frame.get("message", "worker reported a shard failure")),
                )
            self._schedule_locked()

    # -- scheduling ----------------------------------------------------
    def _schedule_locked(self) -> None:
        """Lease work to every idle worker (caller holds the lock).

        Source order: requeued shards first (orphans of dead workers),
        then fresh cuts from grids with pending cells, then -- adaptive
        policy only -- steals from the largest in-flight remainder, then
        speculative re-leases of shards past the straggler deadline.
        """
        if not self._running:
            return
        while True:
            worker = next(
                (
                    candidate
                    for candidate in self._workers.values()
                    if candidate.alive and candidate.shard is None
                ),
                None,
            )
            if worker is None:
                return
            shard = self._next_shard_locked(worker)
            if shard is None:
                return
            self._lease_locked(worker, shard)

    def _next_shard_locked(self, worker: _WorkerState) -> Optional[_Shard]:
        # 1. Orphaned / stolen-then-orphaned shards, front of the queue.
        while self._queue:
            shard = self._queue[0]
            grid = self._grids.get(shard.grid_id)
            if grid is None or grid.finished or not shard.remaining:
                self._queue.popleft()
                continue
            self._queue.popleft()
            shard.indices = sorted(shard.remaining)
            return shard
        # 2. A fresh cut from the first grid with pending cells
        #    (admission order -- deterministic and FIFO-fair).
        for grid in self._grids.values():
            if grid.finished or not grid.pending:
                continue
            return self._cut_shard_locked(grid, worker)
        if self.shard_policy != "adaptive":
            return None
        # 3. Steal: split the largest in-flight remainder.
        shard = self._steal_locked(worker)
        if shard is not None:
            return shard
        # 4. Speculate: duplicate a straggler's remainder past deadline.
        return self._speculate_locked(worker)

    def _cut_shard_locked(
        self, grid: _GridState, worker: _WorkerState
    ) -> _Shard:
        """Cut the next lease off a grid's pending range, sized for
        ``worker``: its capability-weight share of the remaining cost,
        divided by the factoring divisor so shards shrink toward the
        tail, floored at one cell and capped at :data:`MAX_SHARD_CELLS`.
        """
        if not grid.costs:
            # Degenerate description (no resolvable costs): equal slices.
            size = min(
                MAX_SHARD_CELLS,
                max(1, -(-len(grid.pending) // (4 * max(1, len(self._workers))))),
            )
            taken, grid.pending = grid.pending[:size], grid.pending[size:]
            return self._new_shard_locked(grid, taken)
        total_weight = sum(
            state.weight for state in self._workers.values() if state.alive
        )
        share = worker.weight / total_weight if total_weight > 0 else 1.0
        remaining_cost = sum(grid.costs[index] for index in grid.pending)
        budget = remaining_cost * share / FACTOR
        taken, rest = take_cost_prefix(
            grid.pending, grid.costs, budget, max_cells=MAX_SHARD_CELLS
        )
        grid.pending = rest
        return self._new_shard_locked(grid, taken)

    def _in_flight_locked(self) -> List[Tuple[_WorkerState, _Shard, _GridState]]:
        triples = []
        for state in self._workers.values():
            shard = state.shard
            if shard is None or not shard.remaining:
                continue
            grid = self._grids.get(shard.grid_id)
            if grid is None or grid.finished:
                continue
            triples.append((state, shard, grid))
        return triples

    def _remaining_cost(self, shard: _Shard, grid: _GridState) -> float:
        if grid.costs:
            return sum(grid.costs[index] for index in shard.remaining)
        return float(len(shard.remaining))

    def _steal_locked(self, thief: _WorkerState) -> Optional[_Shard]:
        """Split the costliest in-flight remainder; the thief takes the
        tail half and the victim is told to skip it (``trim`` frame).

        The victim streams cells in index order, so stealing the *tail*
        minimises the window where both compute the same cell; if the
        trim arrives late the duplicates are deduplicated downstream.
        """
        candidates = [
            (state, shard, grid)
            for state, shard, grid in self._in_flight_locked()
            if len(shard.remaining) >= 2
        ]
        if not candidates:
            return None
        victim, shard, grid = max(
            candidates,
            key=lambda item: (self._remaining_cost(item[1], item[2]),
                              item[1].shard_id),
        )
        remaining = sorted(shard.remaining)
        half = self._remaining_cost(shard, grid) / 2.0
        stolen: List[int] = []
        spent = 0.0
        for index in reversed(remaining):
            if stolen and spent >= half:
                break
            if len(stolen) >= len(remaining) - 1:
                break  # the victim keeps at least its current cell
            stolen.append(index)
            spent += grid.costs[index] if grid.costs else 1.0
        if not stolen:
            return None
        stolen.sort()
        shard.remaining.difference_update(stolen)
        shard.indices = [
            index for index in shard.indices if index in shard.remaining
        ]
        self._counters["steals"] += 1
        try:
            victim.conn.send({
                "type": "trim",
                "grid": grid.grid_id,
                "shard": shard.shard_id,
                "indices": stolen,
            })
            self._counters["trims_sent"] += 1
        except OSError:
            # Dead victim: its reader thread will requeue what is left of
            # its shard; the stolen cells are already ours.
            pass
        return self._new_shard_locked(grid, stolen)

    def _speculate_locked(self, thief: _WorkerState) -> Optional[_Shard]:
        """Re-lease a copy of a straggling shard's remainder.

        Only shards leased longer than ``straggler_deadline`` ago and
        without a live speculative copy qualify; the original keeps
        computing (no trim) and the two races' duplicates are dropped
        first-complete-wins.
        """
        now = time.monotonic()
        candidates = [
            (state, shard, grid)
            for state, shard, grid in self._in_flight_locked()
            if not shard.has_speculative_copy
            and now - shard.leased_at >= self.straggler_deadline
        ]
        if not candidates:
            return None
        _, original, grid = max(
            candidates,
            key=lambda item: (self._remaining_cost(item[1], item[2]),
                              item[1].shard_id),
        )
        copy = self._new_shard_locked(
            grid, sorted(original.remaining), speculative=True
        )
        copy.origin = original
        original.has_speculative_copy = True
        self._counters["speculative_leases"] += 1
        return copy

    def _lease_locked(self, worker: _WorkerState, shard: _Shard) -> None:
        grid = self._grids.get(shard.grid_id)
        if grid is None or grid.finished:
            return
        try:
            if shard.grid_id not in worker.known_grids:
                worker.conn.send({
                    "type": "grid",
                    "grid": shard.grid_id,
                    "description": grid.description,
                })
                worker.known_grids.add(shard.grid_id)
            worker.conn.send({
                "type": "shard",
                "grid": shard.grid_id,
                "shard": shard.shard_id,
                "indices": shard.indices,
            })
        except OSError:
            # Dead before the lease landed: put the shard back and
            # drop the worker (its reader thread will also land here
            # eventually; removal is idempotent).
            self._queue.appendleft(shard)
            if shard.origin is not None:
                shard.origin.has_speculative_copy = False
            worker.alive = False
            self._workers.pop(id(worker), None)
            return
        shard.leased_at = time.monotonic()
        worker.shard = shard
        self._counters["shards_leased"] += 1
