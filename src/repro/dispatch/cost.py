"""Per-cell cost model and shard planning for adaptive dispatch.

The static one-shot partitioner of PR 9 sliced a grid into equal
contiguous shards, so one slow worker -- or one expensive cell (a
large-``n`` exact-diameter oracle dominates the Theorem-1/Theorem-7
sweeps this reproduction runs) -- pinned the whole sweep to the
straggler's wall clock.  This module supplies the two ingredients the
adaptive scheduler (:class:`repro.dispatch.coordinator.DispatchCoordinator`
with ``shard_policy="adaptive"``) replaces it with:

* :class:`CostModel` -- a per-cell wall-time estimate.  The *static*
  prior is a power law in the cell's node count whose exponent depends
  on the algorithm's correctness guarantee (an ``exact`` kernel runs an
  all-pairs-flavoured schedule, ``~n^2`` on the sparse families swept
  here; a ``two_approx`` is a constant number of BFS waves, ``~n``).
  The prior is *calibrated online*: completed-cell wall times streamed
  back in worker heartbeats update a per-algorithm scale factor (the
  ratio of observed to predicted totals), so absolute estimates converge
  to the deployment's real speed while staying **ordering-independent**
  -- the scale is a ratio of sums, so the estimate after a set of
  observations does not depend on the order they arrived in (up to
  float-addition rounding, which never changes a shard plan cut).
* :func:`plan_chunks` -- a factoring (guided-self-scheduling-style)
  chunk plan over a cost sequence: each cut takes ``remaining /
  (factor * workers)`` worth of *cost* off the head, so chunks are large
  at the head (amortising per-chunk overhead while plenty of work
  remains) and small at the tail (bounding how much a straggler can
  hold).  The same planner drives both the coordinator's lease sizing
  and :class:`repro.runner.batch.BatchRunner`'s local chunk plan, so
  ``--jobs`` sweeps get the shrinking-tail behaviour too.

Everything here is deterministic in its inputs: no wall clocks, no
randomness, no dict-iteration dependence -- the shard plan for a given
grid and calibration state is byte-identical across processes and
``PYTHONHASHSEED`` values (regression-tested).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Cost-exponent priors by correctness guarantee: how a cell's wall time
#: scales with its node count.  ``exact`` schedules touch every node's
#: BFS (~n * m, m ~ n on the sparse sweep families); the approximation
#: kernels run O(1) BFS waves plus aggregation.  Unknown guarantees get
#: the middle prior -- calibration absorbs the error either way.
GUARANTEE_EXPONENTS: Dict[Optional[str], float] = {
    "exact": 2.0,
    "three_halves": 1.8,
    "two_approx": 1.3,
    None: 1.5,
}

#: Default factoring divisor of :func:`plan_chunks`: each cut takes
#: ``remaining_cost / (FACTOR * weight_share)`` -- 2.0 is the classic
#: factoring choice (half the remaining work spread fairly per round).
FACTOR = 2.0

#: Node-count floor so tiny cells keep a nonzero, comparable cost.
_MIN_NODES = 2


def guarantee_of(name: str, kind: str = "sweep") -> Optional[str]:
    """The correctness guarantee of a registered algorithm or problem.

    Looks the name up in the sweep-algorithm registry (or the quantum
    problem registry for ``kind="quantum"``); unknown names return
    ``None`` rather than raising -- the cost model is advisory, and a
    coordinator must keep scheduling grids whose kernels it cannot
    resolve locally.
    """
    try:
        if kind == "quantum":
            from repro.core.problems import QUANTUM_PROBLEMS

            info = QUANTUM_PROBLEMS.get(name)
            return info.guarantee if info is not None else None
        from repro.runner.algorithms import SWEEP_ALGORITHMS

        info = SWEEP_ALGORITHMS.get(name)
        return info.guarantee if info is not None else None
    except Exception:
        return None


def static_cell_cost(
    num_nodes: int, guarantee: Optional[str] = None
) -> float:
    """The uncalibrated cost prior of one cell, in arbitrary units.

    A pure power law ``n ** exponent(guarantee)``; only *ratios* between
    cells matter to the planner, so the unit is irrelevant until
    calibration maps it onto seconds.
    """
    exponent = GUARANTEE_EXPONENTS.get(guarantee, GUARANTEE_EXPONENTS[None])
    return float(max(int(num_nodes), _MIN_NODES)) ** exponent


class CostModel:
    """Static per-cell priors, calibrated online from observed wall times.

    ``observe(algorithm, num_nodes, seconds, guarantee=...)`` accumulates
    the observed seconds and the static prior of completed cells per
    algorithm; ``estimate(...)`` then returns ``prior * scale`` where
    ``scale = observed_total / prior_total`` for that algorithm (falling
    back to the all-algorithm ratio, then to the raw prior).  Because the
    scale is a ratio of *sums*, the model state after any multiset of
    observations is independent of their arrival order (up to float
    rounding) -- stealing and speculation can reorder completions freely
    without making the shard plan nondeterministic.
    """

    def __init__(self) -> None:
        # algorithm -> [observed_seconds_total, prior_units_total]
        self._per_algorithm: Dict[str, List[float]] = {}
        self._all: List[float] = [0.0, 0.0]

    def observe(
        self,
        algorithm: str,
        num_nodes: int,
        seconds: float,
        guarantee: Optional[str] = None,
    ) -> None:
        """Record one completed cell's wall time."""
        seconds = float(seconds)
        if seconds < 0.0:
            return
        prior = static_cell_cost(num_nodes, guarantee)
        entry = self._per_algorithm.setdefault(str(algorithm), [0.0, 0.0])
        entry[0] += seconds
        entry[1] += prior
        self._all[0] += seconds
        self._all[1] += prior

    def observation_count(self) -> int:
        """How many algorithms have contributed calibration data."""
        return len(self._per_algorithm)

    def _scale(self, algorithm: str) -> Optional[float]:
        entry = self._per_algorithm.get(algorithm)
        if entry is not None and entry[1] > 0.0:
            return entry[0] / entry[1]
        if self._all[1] > 0.0:
            return self._all[0] / self._all[1]
        return None

    def estimate(
        self,
        algorithm: str,
        num_nodes: int,
        guarantee: Optional[str] = None,
    ) -> float:
        """Estimated cost of one cell: seconds once calibrated, else units."""
        prior = static_cell_cost(num_nodes, guarantee)
        scale = self._scale(str(algorithm))
        return prior if scale is None else prior * scale

    def grid_costs(
        self,
        description: Mapping[str, Any],
    ) -> List[float]:
        """Per-task-index cost estimates for one dispatched grid.

        ``description`` is the wire grid description of
        :meth:`repro.dispatch.backend.RemoteDispatch._describe`: specs as
        plain dicts, algorithm names, and ``tasks`` as ``[spec_index,
        name_index]`` pairs.  Resolves each algorithm's guarantee through
        the registries (best-effort) and returns one estimate per task,
        in task order.
        """
        kind = str(description.get("kind", "sweep"))
        specs = list(description.get("specs", ()))
        names = list(description.get("algorithms", ()))
        guarantees = [guarantee_of(name, kind=kind) for name in names]
        costs: List[float] = []
        for spec_index, name_index in description.get("tasks", ()):
            spec = specs[int(spec_index)]
            nodes = int(spec.get("num_nodes", _MIN_NODES))
            name = names[int(name_index)]
            costs.append(
                self.estimate(name, nodes, guarantees[int(name_index)])
            )
        return costs


def take_cost_prefix(
    indices: Sequence[int],
    costs: Sequence[float],
    budget: float,
    max_cells: Optional[int] = None,
) -> Tuple[List[int], List[int]]:
    """Split ``indices`` into a head worth ``budget`` cost and the rest.

    Always takes at least one index (progress must be possible no matter
    how large one cell's estimate is) and at most ``max_cells``.
    ``costs`` is indexed by task index.  Returns ``(taken, remaining)``.
    """
    taken: List[int] = []
    spent = 0.0
    for position, index in enumerate(indices):
        if taken and spent >= budget:
            return taken, list(indices[position:])
        if max_cells is not None and len(taken) >= max_cells:
            return taken, list(indices[position:])
        taken.append(index)
        spent += costs[index]
    return taken, []


def plan_chunks(
    costs: Sequence[float],
    workers: int,
    factor: float = FACTOR,
    max_cells: Optional[int] = None,
) -> List[int]:
    """A factoring chunk plan over a cost sequence: list of chunk lengths.

    Walks the costs front to back, cutting each chunk to cover
    ``remaining_cost / (factor * workers)`` -- so chunk *cost* halves as
    the work drains: large chunks while there is plenty left (amortising
    per-chunk overhead), single cells at the tail (a straggler holds at
    most one expensive cell hostage).  Every chunk has at least one cell
    and, with ``max_cells``, at most that many.  ``sum(plan) ==
    len(costs)`` always.

    Deterministic in its inputs; used by both the dispatch coordinator's
    adaptive lease sizing and the local
    :class:`repro.runner.batch.BatchRunner` chunk plan.
    """
    total = len(costs)
    if total == 0:
        return []
    workers = max(1, int(workers))
    remaining_cost = float(sum(costs))
    plan: List[int] = []
    position = 0
    while position < total:
        budget = remaining_cost / (factor * workers)
        taken = 0
        spent = 0.0
        while position + taken < total:
            if taken and spent >= budget:
                break
            if max_cells is not None and taken >= max_cells:
                break
            spent += costs[position + taken]
            taken += 1
        plan.append(taken)
        position += taken
        remaining_cost = max(0.0, remaining_cost - spent)
    return plan
