"""Pluggable dispatch backends for sweep grids: local pools, remote shards.

``repro.dispatch`` decides *where* the independent cells of a sweep grid
execute, behind the one mapping surface
(:class:`repro.runner.batch.BatchRunner`'s ``jobs``/``map``/``imap``)
that :func:`repro.analysis.sweep.run_sweep_grid` aggregates from:

* ``inprocess`` / ``multiprocessing`` -- the existing serial and
  process-pool paths, now selectable by name
  (:func:`resolve_dispatch`);
* ``remote`` -- a stdlib-socket coordinator/worker pair
  (:class:`DispatchCoordinator`, :mod:`repro.dispatch.worker`) speaking
  length-prefixed JSON frames (:mod:`repro.dispatch.protocol`): workers
  register (advertising cpu count, numpy availability and a
  micro-benchmark score), lease contiguous shards of a grid's task
  indices, append completed cells to their own JSONL store shard under
  the advisory writer lock, and stream results back; dead workers
  (missed heartbeats, dropped connections) have their unfinished shards
  requeued, mirroring the job ledger's stale-lease recovery.

Scheduling is adaptive by default (``shard_policy="adaptive"``; see
:mod:`repro.dispatch.cost`): leases are cut factoring-style from a
per-cell cost model -- guarantee-based power-law priors calibrated
online from cell timings piggybacked on heartbeats -- and weighted by
each worker's capability score, so shards shrink toward the tail and
faster machines get bigger slices.  When the queue drains, idle workers
*steal* the costliest in-flight remainder (``trim`` frames tell the
victim what to skip), and shards that outlive the straggler deadline
are speculatively re-leased, first copy to finish wins.  ``static``
restores the one-shot fixed-size partitioner.

Because every cell's record is a pure function of its task key (spec,
algorithm, derived seed, fault model), remote execution preserves the
byte-identical-to-serial guarantee *even when stealing, speculation or
requeues execute a cell more than once*: duplicates are dropped
first-complete-wins, the client reorders streamed results into task
order, and the offline shard merge
(:func:`repro.store.merge.merge_shards`, ``repro merge``) reproduces the
exact serial record list from the workers' shard files alone.

CLI surface: ``repro sweep --dispatch {inprocess,multiprocessing,remote}
--shard-policy {static,adaptive} --straggler-deadline S
--dispatch-stats FILE``, ``repro worker join HOST:PORT [--supervise]``,
``repro merge [--stats]``, and ``repro serve --dispatch remote`` for
daemon-managed fan-out.
"""

from repro.dispatch.backend import (
    DISPATCH_NAMES,
    RemoteDispatch,
    dispatch_signature,
    resolve_dispatch,
)
from repro.dispatch.coordinator import (
    SHARD_POLICIES,
    DispatchCoordinator,
)
from repro.dispatch.cost import CostModel, plan_chunks, static_cell_cost
from repro.dispatch.protocol import (
    MAX_FRAME_BYTES,
    DispatchError,
    FramedSocket,
    FrameError,
    parse_address,
)

# NOTE: repro.dispatch.worker is deliberately NOT imported here -- it is
# a ``python -m repro.dispatch.worker`` entry point, and importing it
# from the package __init__ would shadow the runpy execution (the
# "found in sys.modules" RuntimeWarning).  Import run_worker & friends
# from repro.dispatch.worker directly.

__all__ = [
    "DISPATCH_NAMES",
    "CostModel",
    "SHARD_POLICIES",
    "plan_chunks",
    "static_cell_cost",
    "DispatchCoordinator",
    "DispatchError",
    "FrameError",
    "FramedSocket",
    "MAX_FRAME_BYTES",
    "RemoteDispatch",
    "dispatch_signature",
    "parse_address",
    "resolve_dispatch",
]
