"""Pluggable dispatch backends for sweep grids: local pools, remote shards.

``repro.dispatch`` decides *where* the independent cells of a sweep grid
execute, behind the one mapping surface
(:class:`repro.runner.batch.BatchRunner`'s ``jobs``/``map``/``imap``)
that :func:`repro.analysis.sweep.run_sweep_grid` aggregates from:

* ``inprocess`` / ``multiprocessing`` -- the existing serial and
  process-pool paths, now selectable by name
  (:func:`resolve_dispatch`);
* ``remote`` -- a stdlib-socket coordinator/worker pair
  (:class:`DispatchCoordinator`, :mod:`repro.dispatch.worker`) speaking
  length-prefixed JSON frames (:mod:`repro.dispatch.protocol`): workers
  register, lease contiguous shards of a grid's task indices, append
  completed cells to their own JSONL store shard under the advisory
  writer lock, and stream results back; dead workers (missed
  heartbeats, dropped connections) have their unfinished shards
  requeued, mirroring the job ledger's stale-lease recovery.

Because every cell's record is a pure function of its task key (spec,
algorithm, derived seed, fault model), remote execution preserves the
byte-identical-to-serial guarantee: the client reorders streamed results
into task order, and the offline shard merge
(:func:`repro.store.merge.merge_shards`, ``repro merge``) reproduces the
exact serial record list from the workers' shard files alone.

CLI surface: ``repro sweep --dispatch {inprocess,multiprocessing,remote}``,
``repro worker join HOST:PORT``, ``repro merge``, and ``repro serve
--dispatch remote`` for daemon-managed fan-out.
"""

from repro.dispatch.backend import (
    DISPATCH_NAMES,
    RemoteDispatch,
    dispatch_signature,
    resolve_dispatch,
)
from repro.dispatch.coordinator import DispatchCoordinator
from repro.dispatch.protocol import (
    MAX_FRAME_BYTES,
    DispatchError,
    FramedSocket,
    FrameError,
    parse_address,
)

# NOTE: repro.dispatch.worker is deliberately NOT imported here -- it is
# a ``python -m repro.dispatch.worker`` entry point, and importing it
# from the package __init__ would shadow the runpy execution (the
# "found in sys.modules" RuntimeWarning).  Import run_worker & friends
# from repro.dispatch.worker directly.

__all__ = [
    "DISPATCH_NAMES",
    "DispatchCoordinator",
    "DispatchError",
    "FrameError",
    "FramedSocket",
    "MAX_FRAME_BYTES",
    "RemoteDispatch",
    "dispatch_signature",
    "parse_address",
    "resolve_dispatch",
]
